/**
 * @file
 * Tests for the Krylov solvers (CG, BiCG-STAB, GMRES).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/solver.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

/** Residual check against the original system. */
double
relResidual(const Csr &a, std::span<const double> b,
            std::span<const double> x)
{
    std::vector<double> ax(b.size());
    a.spmv(x, ax);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        num += (b[i] - ax[i]) * (b[i] - ax[i]);
        den += b[i] * b[i];
    }
    return std::sqrt(num / den);
}

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

Csr
generalMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.scatterPerRow = 1.0;
    p.symmetricPattern = false;
    p.diagDominance = 0.2;
    p.seed = seed;
    return genTiled(p);
}

TEST(SolverCg, SolvesIdentity)
{
    const Csr id = Csr::identity(16);
    CsrOperator op(id);
    std::vector<double> b(16, 3.0), x(16, 0.0);
    const SolverResult r = conjugateGradient(op, b, x);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 2);
    for (double v : x)
        EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(SolverCg, SolvesSpdSystem)
{
    const Csr a = spdMatrix(400, 77);
    CsrOperator op(a);
    std::vector<double> b(400, 1.0), x(400, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    const SolverResult r = conjugateGradient(op, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-8);
    EXPECT_GT(r.iterations, 2);
    // Kernel accounting: 1 spmv per iteration (+1 setup).
    EXPECT_EQ(r.spmvCalls,
              static_cast<std::uint64_t>(r.iterations) + 1);
}

TEST(SolverCg, ZeroRhsGivesZeroSolution)
{
    const Csr a = spdMatrix(64, 5);
    CsrOperator op(a);
    std::vector<double> b(64, 0.0), x(64, 1.0);
    const SolverResult r = conjugateGradient(op, b, x);
    EXPECT_TRUE(r.converged);
    for (double v : x)
        EXPECT_EQ(v, 0.0);
}

TEST(SolverCg, WarmStartConvergesFaster)
{
    const Csr a = spdMatrix(400, 78);
    CsrOperator op(a);
    std::vector<double> b(400, 1.0);
    std::vector<double> xCold(400, 0.0);
    const SolverResult cold = conjugateGradient(op, b, xCold);
    std::vector<double> xWarm = xCold; // exact solution as start
    const SolverResult warm = conjugateGradient(op, b, xWarm);
    EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(SolverCg, RespectsIterationCap)
{
    const Csr a = spdMatrix(400, 79);
    CsrOperator op(a);
    std::vector<double> b(400, 1.0), x(400, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-30; // unreachable
    cfg.maxIterations = 7;
    const SolverResult r = conjugateGradient(op, b, x, cfg);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 7);
}

TEST(SolverCg, DimensionMismatchFatal)
{
    const Csr a = Csr::identity(8);
    CsrOperator op(a);
    std::vector<double> b(4), x(8);
    EXPECT_THROW(conjugateGradient(op, b, x), FatalError);
}

TEST(SolverBiCgStab, SolvesGeneralSystem)
{
    const Csr a = generalMatrix(400, 81);
    CsrOperator op(a);
    std::vector<double> b(400, 1.0), x(400, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    const SolverResult r = biCgStab(op, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-8);
    // Two spmv per full iteration.
    EXPECT_GE(r.spmvCalls,
              static_cast<std::uint64_t>(r.iterations));
}

TEST(SolverBiCgStab, SolvesSpdSystemToo)
{
    const Csr a = spdMatrix(300, 83);
    CsrOperator op(a);
    std::vector<double> b(300, 1.0), x(300, 0.0);
    const SolverResult r = biCgStab(op, b, x);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-6);
}

TEST(SolverGmres, SolvesGeneralSystem)
{
    const Csr a = generalMatrix(300, 85);
    CsrOperator op(a);
    std::vector<double> b(300, 1.0), x(300, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    const SolverResult r = gmres(op, b, x, cfg, 30);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-8);
}

TEST(SolverGmres, RestartStillConverges)
{
    const Csr a = generalMatrix(300, 87);
    CsrOperator op(a);
    std::vector<double> b(300, 1.0), x(300, 0.0);
    const SolverResult r = gmres(op, b, x, {}, 5); // tiny restart
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-6);
}

TEST(SolverGmres, RejectsBadRestart)
{
    const Csr a = Csr::identity(4);
    CsrOperator op(a);
    std::vector<double> b(4, 1.0), x(4, 0.0);
    EXPECT_THROW(gmres(op, b, x, {}, 0), FatalError);
}

TEST(Solvers, AgreeOnTheSameSystem)
{
    const Csr a = spdMatrix(300, 91);
    CsrOperator op(a);
    std::vector<double> b(300);
    Rng rng(93);
    for (auto &v : b)
        v = rng.uniform(-1, 1);
    std::vector<double> xCg(300, 0.0), xBi(300, 0.0), xGm(300, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-12;
    conjugateGradient(op, b, xCg, cfg);
    biCgStab(op, b, xBi, cfg);
    gmres(op, b, xGm, cfg);
    for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_NEAR(xCg[i], xBi[i],
                    1e-6 * (1.0 + std::fabs(xCg[i])));
        EXPECT_NEAR(xCg[i], xGm[i],
                    1e-6 * (1.0 + std::fabs(xCg[i])));
    }
}

TEST(Solvers, KernelCountsMatchStructure)
{
    const Csr a = generalMatrix(200, 95);
    CsrOperator op(a);
    std::vector<double> b(200, 1.0), x(200, 0.0);
    const SolverResult r = biCgStab(op, b, x);
    ASSERT_TRUE(r.converged);
    // BiCG-STAB: 2 spmv, ~6 dot, ~6 axpy per iteration.
    EXPECT_NEAR(static_cast<double>(r.spmvCalls),
                2.0 * r.iterations, 2.0);
    EXPECT_GE(r.dotCalls, static_cast<std::uint64_t>(
        4 * r.iterations));
    EXPECT_GE(r.axpyCalls, static_cast<std::uint64_t>(
        5 * r.iterations));
    EXPECT_EQ(r.vectorLength, 200u);
}

TEST(SolverBiCgStab, BreakdownOnSkewSystemStaysFinite)
{
    // A = [[0, 1], [-1, 0]] with b = (1, 0): the shadow residual is
    // orthogonal to A p on the first iteration (rHat . v = 0), the
    // classic BiCG-STAB breakdown. The solver must bail out with a
    // finite residual and an untouched finite iterate -- no NaN may
    // reach x.
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(0, 1, 1.0);
    coo.add(1, 0, -1.0);
    const Csr a = Csr::fromCoo(coo);
    CsrOperator op(a);
    std::vector<double> b = {1.0, 0.0}, x = {0.0, 0.0};
    const SolverResult r = biCgStab(op, b, x);
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(std::isfinite(r.relResidual));
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(SolverBiCgStab, ZeroMatrixBreakdownStaysFinite)
{
    // A = 0: v = A p vanishes, so every denominator in the recurrence
    // is zero. Guarded breakdown must return non-converged with the
    // initial residual, not divide by zero.
    Coo coo;
    coo.rows = coo.cols = 4;
    const Csr a = Csr::fromCoo(coo);
    CsrOperator op(a);
    std::vector<double> b(4, 1.0), x(4, 0.0);
    const SolverResult r = biCgStab(op, b, x);
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(std::isfinite(r.relResidual));
    EXPECT_NEAR(r.relResidual, 1.0, 1e-12); // nothing solved
    for (double v : x) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_EQ(v, 0.0);
    }
}

TEST(SolverGmres, HappyBreakdownDoesNotFakeConvergence)
{
    // A = [[0, 1], [0, 0]] with b = (0, 1): the system is
    // inconsistent (nothing maps onto e2), and the Arnoldi process
    // breaks down at j = 1 with a zero Hessenberg column. The zero
    // column leaves its Givens rotation an identity, so the rotated
    // recurrence residual |g[2]| collapses to 0 -- the solver used to
    // report converged with relResidual 0 while x solved nothing.
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(0, 1, 1.0);
    const Csr a = Csr::fromCoo(coo);
    CsrOperator op(a);
    std::vector<double> b = {0.0, 1.0}, x = {0.0, 0.0};
    const SolverResult r = gmres(op, b, x);
    EXPECT_FALSE(r.converged);
    EXPECT_NEAR(r.relResidual, 1.0, 1e-12);
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(SolverGmres, ImmediateBreakdownHitsSingularPivotPath)
{
    // Same nilpotent operator, b = (1, 0): A v0 vanishes outright,
    // so the very first Hessenberg column is zero and the triangular
    // solve meets the singular pivot h[0][0] == 0 with g[0] != 0
    // (the warning path). x must stay untouched and finite.
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(0, 1, 1.0);
    const Csr a = Csr::fromCoo(coo);
    CsrOperator op(a);
    std::vector<double> b = {1.0, 0.0}, x = {0.0, 0.0};
    const SolverResult r = gmres(op, b, x);
    EXPECT_FALSE(r.converged);
    EXPECT_NEAR(r.relResidual, 1.0, 1e-12);
    EXPECT_EQ(x[0], 0.0);
    EXPECT_EQ(x[1], 0.0);
}

TEST(SolverGmres, LuckyBreakdownOnEigenvectorSolvesExactly)
{
    // b is an eigenvector of the diagonal A: the Krylov subspace is
    // one-dimensional and exactly invariant, so the breakdown is the
    // "lucky" kind -- GMRES must return the exact solution b / 2 in
    // a single iteration instead of stalling or reusing a stale
    // basis vector.
    Coo coo;
    coo.rows = coo.cols = 3;
    coo.add(0, 0, 2.0);
    coo.add(1, 1, 3.0);
    coo.add(2, 2, 4.0);
    const Csr a = Csr::fromCoo(coo);
    CsrOperator op(a);
    std::vector<double> b = {6.0, 0.0, 0.0}, x(3, 0.0);
    const SolverResult r = gmres(op, b, x);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 1);
    EXPECT_EQ(r.relResidual, 0.0);
    EXPECT_EQ(x[0], 3.0);
    EXPECT_EQ(x[1], 0.0);
    EXPECT_EQ(x[2], 0.0);
}

TEST(SolverGmres, RestartOfOneStillConverges)
{
    // GMRES(1) degenerates to a one-dimensional minimal-residual
    // method; on an SPD system the residual still contracts. The
    // boundary restart exercises j == m at every single cycle.
    const Csr a = spdMatrix(64, 97);
    CsrOperator op(a);
    std::vector<double> b(64, 1.0), x(64, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 5000;
    const SolverResult r = gmres(op, b, x, cfg, 1);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-6);
}

TEST(SolverGmres, ConvergenceExactlyAtTheRestartBoundary)
{
    // Two distinct eigenvalues => minimal polynomial of degree 2 =>
    // GMRES converges at exactly j == m for restart 2. The inner
    // loop must stop at the boundary, not spill into a fresh cycle.
    Coo coo;
    coo.rows = coo.cols = 8;
    for (std::int32_t i = 0; i < 8; ++i)
        coo.add(i, i, i < 4 ? 2.0 : 3.0);
    const Csr a = Csr::fromCoo(coo);
    CsrOperator op(a);
    Rng rng(99);
    std::vector<double> b(8), x(8, 0.0);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);
    const SolverResult r = gmres(op, b, x, {}, 2);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, 2);
    EXPECT_LT(relResidual(a, b, x), 1e-9);
}

TEST(SolverBiCgStab, SingularSystemNeverProducesNan)
{
    // Singular A (one empty row) with an inconsistent rhs: the
    // method cannot converge; it must terminate via the breakdown
    // guards or the iteration cap with finite outputs either way.
    Coo coo;
    coo.rows = coo.cols = 3;
    coo.add(0, 0, 1.0);
    coo.add(1, 1, 1.0);
    const Csr a = Csr::fromCoo(coo); // row 2 is all zeros
    CsrOperator op(a);
    std::vector<double> b = {1.0, 1.0, 1.0}, x(3, 0.0);
    SolverConfig cfg;
    cfg.maxIterations = 50;
    const SolverResult r = biCgStab(op, b, x, cfg);
    EXPECT_FALSE(r.converged);
    EXPECT_TRUE(std::isfinite(r.relResidual));
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
}

} // namespace
} // namespace msc
