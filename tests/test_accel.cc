/**
 * @file
 * Tests for the system-level accelerator model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/accel.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"

namespace msc {
namespace {

Csr
bandedMatrix(std::int32_t rows, std::uint64_t seed)
{
    TiledParams p;
    p.rows = rows;
    p.tile = 48;
    p.tileDensity = 0.3;
    p.scatterPerRow = 0.5;
    p.seed = seed;
    p.symmetricPattern = true;
    p.spd = true;
    return genTiled(p);
}

TEST(Accelerator, PrepareProducesConsistentPlan)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    const Csr m = bandedMatrix(8192, 301);
    const PrepareResult prep = accel.prepare(m);
    EXPECT_GT(prep.placedBlocks, 0u);
    EXPECT_EQ(prep.placedBlocks + prep.dissolvedBlocks,
              prep.blocking.blocksPerSize[0] +
                  prep.blocking.blocksPerSize[1] +
                  prep.blocking.blocksPerSize[2] +
                  prep.blocking.blocksPerSize[3]);
    EXPECT_GT(prep.spmv.time, 0.0);
    EXPECT_GT(prep.spmv.energy, 0.0);
    EXPECT_GT(prep.dotOp.time, 0.0);
    EXPECT_GT(prep.axpyOp.time, 0.0);
    EXPECT_GT(prep.programTime, 0.0);
    EXPECT_FALSE(prep.gpuFallback);
    EXPECT_EQ(prep.banksUsed, (8192 + 1199) / 1200);
}

TEST(Accelerator, FunctionalSpmvMatchesCsr)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    const Csr m = bandedMatrix(4096, 307);
    accel.prepare(m);
    std::vector<double> x(4096), yAccel(4096), yCsr(4096);
    Rng rng(311);
    for (auto &v : x)
        v = rng.uniform(-1, 1);
    accel.spmv(x, yAccel);
    m.spmv(x, yCsr);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(yAccel[i], yCsr[i],
                    1e-12 * (1.0 + std::fabs(yCsr[i])))
            << "row " << i;
    }
}

TEST(Accelerator, EdgeBlocksDoNotFoldPastTheLastRow)
{
    // 103 rows with 128-wide placements: the bottom edge block's
    // window extends 25 rows past the matrix. The padded partials
    // are zero, but folding them would still read and write heap
    // memory beyond y (+= 0.0 silently turns a -0.0 into +0.0,
    // which is how the tail canary detects it bitwise). Found by
    // the msc_check accel sweep under ThreadSanitizer.
    msc::setLogQuiet(true);
    TiledParams p;
    p.rows = 103;
    p.tile = 12;
    p.tileDensity = 0x1.4cfa5e7a11b46p-1;
    p.scatterPerRow = 0x1.d47056da54504p-2;
    p.symmetricPattern = true;
    p.values.tileExpSigma = 0x1.ba8f71c5d2bdp+0;
    p.values.elemExpSigma = 0x1.aba643408832ep-1;
    p.values.outlierProb = 0.02;
    p.seed = 4430784607913861559ull;
    const Csr m = genTiled(p);
    Accelerator accel;
    const PrepareResult prep = accel.prepare(m);
    ASSERT_GT(prep.placedBlocks, 0u);

    const auto n = static_cast<std::size_t>(m.rows());
    std::vector<double> x(n, 1.0), yCsr(n);
    std::vector<double> buf(n + 32, -0.0);
    accel.spmv(x, std::span<double>(buf.data(), n));
    for (std::size_t i = n; i < buf.size(); ++i) {
        EXPECT_TRUE(std::signbit(buf[i]))
            << "spmv touched memory past y at offset " << i - n;
    }
    m.spmv(x, yCsr);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(buf[i], yCsr[i],
                    1e-12 * (1.0 + std::fabs(yCsr[i])))
            << "row " << i;
    }
}

TEST(Accelerator, ScatterMatrixFallsBackToGpu)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    TiledParams p;
    p.rows = 8192;
    p.diagTiles = 0;
    p.scatterPerRow = 4.0;
    p.seed = 313;
    p.symmetricPattern = false;
    const PrepareResult prep = accel.prepare(genTiled(p));
    EXPECT_TRUE(prep.gpuFallback);
    EXPECT_EQ(prep.placedBlocks, 0u);
}

TEST(Accelerator, SolveCostComposesKernels)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    const Csr m = bandedMatrix(4096, 317);
    const PrepareResult prep = accel.prepare(m);
    SolverResult run;
    run.spmvCalls = 10;
    run.dotCalls = 20;
    run.axpyCalls = 30;
    run.vectorLength = 4096;
    const AccelCost noSetup = accel.solveCost(run, false);
    const AccelCost withSetup = accel.solveCost(run, true);
    const double kernels = 10 * prep.spmv.time +
                           20 * prep.dotOp.time +
                           30 * prep.axpyOp.time;
    EXPECT_NEAR(noSetup.time, kernels, 1e-12);
    EXPECT_NEAR(withSetup.time,
                kernels + prep.programTime + prep.preprocessTime,
                1e-12);
    EXPECT_GT(withSetup.energy, noSetup.energy);
}

TEST(Accelerator, LargerMatrixUsesMoreBanks)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    const Csr small = bandedMatrix(2048, 331);
    const Csr large = bandedMatrix(16384, 331);
    const int banksSmall = accel.prepare(small).banksUsed;
    Accelerator accel2;
    const int banksLarge = accel2.prepare(large).banksUsed;
    EXPECT_GT(banksLarge, banksSmall);
    // More banks -> faster vector kernels per element.
    // (dot time scales with rows/banksUsed which is capped at 1200.)
    EXPECT_LE(accel2.dotCost().time,
              accel.dotCost().time * 16384.0 / 2048.0);
}

TEST(Accelerator, AreaModelMatchesPaper)
{
    const Accelerator accel;
    const AreaBreakdown a = accel.area();
    EXPECT_NEAR(a.total(), 539.0, 15.0); // paper: 539 mm^2
    const double procMemShare =
        (a.processors + a.globalMemory) / a.total();
    EXPECT_NEAR(procMemShare, 0.136, 0.02); // paper: 13.6%
    const double adcShare =
        a.adcsOnly / (a.crossbarsAndAdcs + a.bankBuffers);
    EXPECT_NEAR(adcShare, 0.459, 0.03); // paper: 45.9%
}

TEST(Accelerator, EnduranceScalesWithSolveTime)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    accel.prepare(bandedMatrix(2048, 337));
    const double shortLife = accel.enduranceYears(0.1);
    const double longLife = accel.enduranceYears(3.2);
    EXPECT_GT(longLife, shortLife);
    EXPECT_GT(longLife, 100.0); // the paper's claim at their scale
}

TEST(Accelerator, ReprogramCostScalesWithChangedFraction)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    const PrepareResult prep = accel.prepare(bandedMatrix(2048, 341));
    const AccelCost full = accel.reprogramCost(1.0);
    const AccelCost half = accel.reprogramCost(0.5);
    const AccelCost none = accel.reprogramCost(0.0);
    EXPECT_NEAR(full.time, prep.programTime, 1e-12);
    EXPECT_NEAR(half.energy, 0.5 * prep.programEnergy, 1e-9);
    EXPECT_EQ(none.time, 0.0);
    EXPECT_THROW(accel.reprogramCost(1.5), FatalError);
}

TEST(Accelerator, PoolCapacityMatchesTable1)
{
    const Accelerator accel;
    const auto pools = accel.poolCapacity();
    ASSERT_EQ(pools.size(), 4u);
    EXPECT_EQ(pools[0], (std::pair<unsigned, unsigned>{512, 256}));
    EXPECT_EQ(pools[1], (std::pair<unsigned, unsigned>{256, 512}));
    EXPECT_EQ(pools[2], (std::pair<unsigned, unsigned>{128, 768}));
    EXPECT_EQ(pools[3], (std::pair<unsigned, unsigned>{64, 1024}));
}

TEST(Accelerator, MisuseIsFatal)
{
    Accelerator accel;
    std::vector<double> x(8), y(8);
    EXPECT_THROW(accel.spmv(x, y), FatalError);
    SolverResult run;
    EXPECT_THROW(accel.solveCost(run), FatalError);

    AcceleratorConfig bad;
    bad.clustersPerBank = {{64, 8}, {512, 2}}; // wrong order
    EXPECT_THROW(Accelerator{bad}, FatalError);
}

} // namespace
} // namespace msc
