/**
 * @file
 * Property-based randomized tests for the fixed-point alignment
 * pipeline (src/fixedpoint) and the wide-integer arithmetic
 * (src/wideint), on seeded random operands:
 *
 *  - FP64 -> aligned fixed point -> FP64 round-trips exactly (the
 *    paper's claim: alignment within the 64-bit pad window loses no
 *    precision), and sets exceeding the window are rejected.
 *  - Bias encoding keeps every stored operand nonnegative within
 *    biasBits+1 bits and decodes back to the signed magnitude.
 *  - WideUInt add/sub/shift/mul/div identities hold against
 *    `unsigned __int128` oracles.
 *
 * Seeds are fixed so a failure is a deterministic repro, not a
 * flake; bump kRounds locally for a deeper search.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fixedpoint/align.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "wideint/wideint.hh"

namespace {

using namespace msc;

constexpr int kRounds = 200;

using u128 = unsigned __int128;

u128
oracleOf(const U128 &v)
{
    return (static_cast<u128>(v.word(1)) << 64) | v.word(0);
}

U128
wideOf(u128 v)
{
    U128 r(static_cast<std::uint64_t>(v));
    U128 hi(static_cast<std::uint64_t>(v >> 64));
    r |= hi << 64;
    return r;
}

u128
randomOracle(Rng &rng)
{
    // Mix full-width values with sparse/small ones so carries,
    // zero words, and boundary widths all get exercised.
    switch (rng.below(4)) {
      case 0:
        return (static_cast<u128>(rng.next()) << 64) | rng.next();
      case 1:
        return static_cast<u128>(rng.next());
      case 2:
        return static_cast<u128>(1) << rng.below(128);
      default:
        return (static_cast<u128>(rng.next()) << 64 | rng.next()) >>
               rng.below(128);
    }
}

TEST(PropertyWideInt, AddSubMatchOracle)
{
    Rng rng(0x1de0001);
    for (int i = 0; i < kRounds; ++i) {
        const u128 a = randomOracle(rng);
        const u128 b = randomOracle(rng);
        EXPECT_EQ(oracleOf(wideOf(a) + wideOf(b)),
                  static_cast<u128>(a + b));
        EXPECT_EQ(oracleOf(wideOf(a) - wideOf(b)),
                  static_cast<u128>(a - b));
        // a + b - b == a (wraparound-safe).
        EXPECT_EQ(wideOf(a) + wideOf(b) - wideOf(b), wideOf(a));
    }
}

TEST(PropertyWideInt, ShiftsMatchOracle)
{
    Rng rng(0x1de0002);
    for (int i = 0; i < kRounds; ++i) {
        const u128 a = randomOracle(rng);
        const unsigned s =
            static_cast<unsigned>(rng.below(128));
        EXPECT_EQ(oracleOf(wideOf(a) << s),
                  static_cast<u128>(a << s));
        EXPECT_EQ(oracleOf(wideOf(a) >> s),
                  static_cast<u128>(a >> s));
        // Shift-out-and-back masks the low bits.
        EXPECT_EQ(oracleOf((wideOf(a) >> s) << s),
                  static_cast<u128>((a >> s) << s));
    }
}

TEST(PropertyWideInt, BitwiseAndComparisonMatchOracle)
{
    Rng rng(0x1de0003);
    for (int i = 0; i < kRounds; ++i) {
        const u128 a = randomOracle(rng);
        const u128 b = randomOracle(rng);
        EXPECT_EQ(oracleOf(wideOf(a) & wideOf(b)),
                  static_cast<u128>(a & b));
        EXPECT_EQ(oracleOf(wideOf(a) | wideOf(b)),
                  static_cast<u128>(a | b));
        EXPECT_EQ(oracleOf(wideOf(a) ^ wideOf(b)),
                  static_cast<u128>(a ^ b));
        EXPECT_EQ(oracleOf(~wideOf(a)), static_cast<u128>(~a));
        EXPECT_EQ(wideOf(a) < wideOf(b), a < b);
        EXPECT_EQ(wideOf(a) == wideOf(b), a == b);
    }
}

TEST(PropertyWideInt, MulSmallMatchesOracle)
{
    Rng rng(0x1de0004);
    for (int i = 0; i < kRounds; ++i) {
        const u128 a = randomOracle(rng);
        const std::uint64_t m = rng.next();
        U128 v = wideOf(a);
        v.mulSmall(m);
        EXPECT_EQ(oracleOf(v), static_cast<u128>(a * m));
    }
}

TEST(PropertyWideInt, DivModSmallMatchOracle)
{
    Rng rng(0x1de0005);
    for (int i = 0; i < kRounds; ++i) {
        const u128 a = randomOracle(rng);
        const std::uint64_t d = rng.next() | 1; // never zero
        U128 v = wideOf(a);
        const std::uint64_t rem = v.divSmall(d);
        EXPECT_EQ(oracleOf(v), static_cast<u128>(a / d));
        EXPECT_EQ(rem, static_cast<std::uint64_t>(a % d));
        EXPECT_EQ(wideOf(a).modSmall(d),
                  static_cast<std::uint64_t>(a % d));
        // Reconstruction: (a / d) * d + rem == a.
        U128 back = v;
        back.mulSmall(d);
        back += U128(rem);
        EXPECT_EQ(back, wideOf(a));
    }
}

TEST(PropertyWideInt, MulWideMatchesOracleOn64BitOperands)
{
    Rng rng(0x1de0006);
    for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        // 64x64 -> exact 128-bit product, checkable head-on.
        const auto p = U128(a).mulWide(U128(b)); // WideUInt<4>
        const u128 want = static_cast<u128>(a) * b;
        EXPECT_EQ(p.word(0), static_cast<std::uint64_t>(want));
        EXPECT_EQ(p.word(1), static_cast<std::uint64_t>(want >> 64));
        EXPECT_EQ(p.word(2), 0u);
        EXPECT_EQ(p.word(3), 0u);
    }
}

TEST(PropertyWideInt, MulWideModularIdentityOnFullWidth)
{
    // The 256-bit product of full 128-bit operands exceeds any
    // native oracle; check it modulo small primes instead (CRT-style
    // confidence) plus the commutativity identity.
    Rng rng(0x1de0007);
    for (int i = 0; i < kRounds; ++i) {
        const u128 a = randomOracle(rng);
        const u128 b = randomOracle(rng);
        const auto p = wideOf(a).mulWide(wideOf(b));
        for (std::uint64_t prime : {251ull, 65521ull, 4294967291ull}) {
            const std::uint64_t want = static_cast<std::uint64_t>(
                (static_cast<u128>(wideOf(a).modSmall(prime)) *
                 wideOf(b).modSmall(prime)) %
                prime);
            EXPECT_EQ(p.modSmall(prime), want);
        }
        EXPECT_EQ(p, wideOf(b).mulWide(wideOf(a)));
    }
}

TEST(PropertyWideInt, BitQueriesMatchOracle)
{
    Rng rng(0x1de0008);
    for (int i = 0; i < kRounds; ++i) {
        const u128 a = randomOracle(rng);
        const U128 v = wideOf(a);
        unsigned wantLen = 0;
        for (unsigned bit = 0; bit < 128; ++bit) {
            if ((a >> bit) & 1)
                wantLen = bit + 1;
        }
        EXPECT_EQ(v.bitLength(), wantLen);
        EXPECT_EQ(v.popcount(),
                  static_cast<unsigned>(
                      std::popcount(static_cast<std::uint64_t>(a)) +
                      std::popcount(
                          static_cast<std::uint64_t>(a >> 64))));
        if (a != 0) {
            unsigned tz = 0;
            while (!((a >> tz) & 1))
                ++tz;
            EXPECT_EQ(v.countTrailingZeros(), tz);
        }
    }
}

// --- fixed-point alignment -----------------------------------------

/** Random value set whose exponent spread stays within the pad
 *  window: alignment must then be exact. */
std::vector<double>
inWindowSet(Rng &rng, std::size_t n, int spreadBits)
{
    const int baseExp = static_cast<int>(rng.range(-40, 40));
    std::vector<double> v(n);
    for (auto &x : v) {
        if (rng.chance(0.1)) {
            x = 0.0;
            continue;
        }
        const int e =
            baseExp + static_cast<int>(rng.range(0, spreadBits));
        x = std::ldexp(rng.uniform(1.0, 2.0), e) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return v;
}

TEST(PropertyAlign, RoundTripIsExactWithinTheWindow)
{
    Rng rng(0xa11a0001);
    for (int round = 0; round < kRounds; ++round) {
        const auto v = inWindowSet(
            rng, 1 + rng.below(32),
            static_cast<int>(rng.below(fxp::maxExpRange)));
        const AlignedSet a = alignValues(v);
        ASSERT_EQ(a.size(), v.size());
        EXPECT_LE(a.magBits, fxp::maxMagBits);
        for (std::size_t i = 0; i < v.size(); ++i) {
            // The paper's bound: within the 64-bit pad window the
            // fixed-point mapping is lossless, so the round trip is
            // bit-exact, not merely close.
            EXPECT_EQ(a.valueOf(i), v[i])
                << "round " << round << " entry " << i;
        }
    }
}

TEST(PropertyAlign, OutOfWindowSetsAreRejected)
{
    Rng rng(0xa11a0002);
    for (int round = 0; round < 32; ++round) {
        auto v = inWindowSet(rng, 8, 10);
        // Force the spread past the pad budget.
        v.push_back(std::ldexp(1.0, 200));
        v.push_back(std::ldexp(1.0, 200 - fxp::maxExpRange - 1));
        EXPECT_THROW(alignValues(v), FatalError);
    }
}

TEST(PropertyAlign, BiasEncodingSignInvariants)
{
    Rng rng(0xa11a0003);
    for (int round = 0; round < kRounds; ++round) {
        const auto v = inWindowSet(
            rng, 1 + rng.below(32),
            static_cast<int>(rng.below(fxp::maxExpRange)));
        const AlignedSet a = alignValues(v);
        const BiasedSet biased = biasEncode(a);
        ASSERT_EQ(biased.size(), a.size());
        EXPECT_EQ(biased.scale, a.scale);
        const U128 bias = biased.bias();
        for (std::size_t i = 0; i < a.size(); ++i) {
            // Stored = bias + (-1)^neg * mag: nonnegative by
            // construction and at most biasBits+1 bits wide.
            const U128 &stored = biased.stored[i];
            EXPECT_LE(stored.bitLength(), biased.width());
            if (a.mag[i].isZero()) {
                EXPECT_EQ(stored, bias);
            } else if (a.neg[i]) {
                EXPECT_LT(stored, bias);
                EXPECT_EQ(bias - stored, a.mag[i]);
            } else {
                EXPECT_GT(stored, bias);
                EXPECT_EQ(stored - bias, a.mag[i]);
            }
            // And the decode helper agrees.
            U128 mag;
            bool neg = false;
            biasDecode(biased, i, mag, neg);
            EXPECT_EQ(mag, a.mag[i]);
            if (!mag.isZero()) {
                EXPECT_EQ(neg, static_cast<bool>(a.neg[i]));
            }
        }
    }
}

} // namespace
