/**
 * @file
 * Bit-exactness lock for the optimized cluster MVM kernels.
 *
 * The slice-group kernels in Cluster::multiply and the
 * allocation-free dataflow in HwCluster::multiply are rewrites of a
 * straight-line original. That original is retained here, verbatim,
 * as RefCluster / RefHwCluster: element-at-a-time masking, per-row
 * segment mask reconstruction, vector<uint8_t> level buffers -- every
 * constant factor the optimized kernels remove. The suite drives both
 * implementations across the full configuration cross product
 * (schedule x rounding x AN x early termination x CIC x headstart x
 * precision target) and asserts bitwise-equal outputs and identical
 * statistics, including the floating-point energy accumulations,
 * which the optimized kernels must reproduce add-for-add.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "ancode/ancode.hh"
#include "cluster/cluster.hh"
#include "cluster/hw_cluster.hh"
#include "cluster/schedule.hh"
#include "device/cell.hh"
#include "fixedpoint/align.hh"
#include "fp/float64.hh"
#include "util/random.hh"
#include "xbar/crossbar.hh"
#include "xbar/model.hh"

namespace msc {
namespace {

unsigned
refBitsFor(unsigned n)
{
    unsigned bits = 0;
    while ((1ull << bits) < n + 1ull)
        ++bits;
    return bits;
}

struct RefSignedAcc
{
    bool neg = false;
    U256 mag;

    void
    add(bool vNeg, const U256 &v)
    {
        if (vNeg == neg) {
            mag += v;
        } else if (mag >= v) {
            mag -= v;
        } else {
            mag = v - mag;
            neg = vNeg;
        }
        if (mag.isZero())
            neg = false;
    }
};

/**
 * Straight-line fork of the pre-optimization Cluster (program +
 * multiply), kept as the reference semantics of the Section IV
 * dataflow. Uses only the public helper layers (align, AN code,
 * schedule, xbar model), so it shares no kernel code with the
 * optimized implementation under test.
 */
class RefCluster
{
  public:
    explicit RefCluster(const ClusterConfig &config)
        : cfg(config), xbarModel(config.size, config.xbar, config.cic),
          an(config.anConstant, fxp::operandBits)
    {}

    struct Element
    {
        std::int32_t col = 0;
        U256 stored;
        U128 mag;
        bool neg = false;
    };

    ClusterProgramInfo
    program(const MatrixBlock &block)
    {
        blockSize = block.size;
        std::vector<double> vals;
        vals.reserve(block.elems.size());
        for (const auto &t : block.elems)
            vals.push_back(t.val);

        const AlignedSet aligned = alignValues(vals);
        const BiasedSet biased = biasEncode(aligned);
        blockScale = aligned.scale;
        storedBits = biased.width();
        storedBias = cfg.anProtect ? an.encode(biased.bias())
                                   : U256::from(biased.bias());

        rowsElems.assign(blockSize, {});
        rowSumF.assign(blockSize, {});
        encodedBits = storedBias.bitLength();
        for (std::size_t e = 0; e < block.elems.size(); ++e) {
            const Triplet &t = block.elems[e];
            Element el;
            el.col = t.col;
            el.mag = aligned.mag[e];
            el.neg = aligned.neg[e] != 0;
            el.stored = cfg.anProtect ? an.encode(biased.stored[e])
                                      : U256::from(biased.stored[e]);
            encodedBits = std::max(encodedBits, el.stored.bitLength());
            rowsElems[static_cast<std::size_t>(t.row)].push_back(el);
            rowSumF[static_cast<std::size_t>(t.row)]
                .add(el.neg, U256::from(el.mag));
        }

        sliceOnes.assign(encodedBits,
                         std::vector<std::uint16_t>(blockSize, 0));
        progInfo = ClusterProgramInfo{};
        std::uint64_t setBits = 0;
        for (unsigned i = 0; i < blockSize; ++i) {
            const auto zeroCells = static_cast<std::uint32_t>(
                blockSize - rowsElems[i].size());
            for (unsigned b = 0; b < encodedBits; ++b) {
                std::uint32_t ones = 0;
                if (storedBias.bit(b))
                    ones += zeroCells;
                for (const Element &el : rowsElems[i])
                    ones += el.stored.bit(b) ? 1 : 0;
                if (2 * ones > blockSize) {
                    ++progInfo.cicInvertedColumns;
                    ones = blockSize - ones;
                } else if (2 * ones == blockSize && ones != 0) {
                    ++progInfo.cicCornerCases;
                }
                sliceOnes[b][i] = static_cast<std::uint16_t>(ones);
                setBits += ones;
            }
        }

        progInfo.matrixSlices = encodedBits;
        progInfo.storedBits = storedBits;
        progInfo.scale = blockScale;
        progInfo.cellsWritten = setBits;
        progInfo.programTime = encodedBits * xbarModel.programTime();
        progInfo.programEnergy = xbarModel.programEnergy(setBits);
        return progInfo;
    }

    static bool
    settled(const U256 &mag, int bound, unsigned prec)
    {
        const int len = static_cast<int>(mag.bitLength());
        const int wb = len - static_cast<int>(prec);
        if (wb <= bound + 1)
            return false;
        bool sawZero = false;
        bool sawOne = false;
        const int lo = std::max(bound + 1, 0);
        for (int p = lo; p < wb; ++p) {
            if (mag.bit(static_cast<unsigned>(p)))
                sawOne = true;
            else
                sawZero = true;
            if (sawZero && sawOne)
                return true;
        }
        return false;
    }

    double
    convert(const RefSignedAcc &acc, int scale, bool exact) const
    {
        U256 mag = acc.mag;
        if (cfg.anProtect)
            mag.divSmall(cfg.anConstant);
        if (exact) {
            return fixedToDouble(acc.neg, mag, scale, cfg.rounding,
                                 cfg.targetMantissaBits);
        }
        const unsigned prec = cfg.targetMantissaBits + 3;
        const unsigned len = mag.bitLength();
        const unsigned wb = len - prec;
        U256 head = mag >> wb;
        U256 synth = head << wb;
        synth.setBit(wb - 1);
        return fixedToDouble(acc.neg, synth, scale, cfg.rounding,
                             cfg.targetMantissaBits);
    }

    ClusterStats
    multiply(std::span<const double> x, std::span<double> y)
    {
        ClusterStats stats;

        std::vector<double> masked(x.begin(), x.end());
        // (The exponent-window peel is omitted: the suite feeds
        // vectors within the 64-exponent window, mirroring the
        // blocking preprocessor's guarantee.)

        const AlignedSet vx = alignValues(masked);
        const BiasedSet ux = biasEncode(vx);
        const unsigned vecBits = ux.width();
        const int outScale = blockScale + vx.scale;

        const ActivationSchedule schedule(encodedBits, vecBits,
                                          cfg.schedule, cfg.hybridSkew);
        stats.matrixSlices = encodedBits;
        stats.vectorSlices = vecBits;
        stats.groupsTotal = schedule.groups().size();

        std::vector<RefSignedAcc> acc(blockSize);
        std::vector<std::uint8_t> done(blockSize, 0);
        std::size_t alive = 0;
        for (unsigned i = 0; i < blockSize; ++i) {
            if (rowsElems[i].empty()) {
                done[i] = 1;
                y[i] = 0.0;
                ++stats.emptyColumns;
                continue;
            }
            ++alive;
            U256 init = rowSumF[i].mag << (ux.biasBits);
            if (cfg.anProtect)
                init.mulSmall(cfg.anConstant);
            acc[i].neg = !rowSumF[i].neg;
            acc[i].mag = init;
            if (init.isZero())
                acc[i].neg = false;
        }

        const unsigned nBits = refBitsFor(blockSize);
        const int anShift = cfg.anProtect
            ? static_cast<int>(an.codeBits() - an.dataBits() - 1) : 0;

        const auto &groups = schedule.groups();
        for (std::size_t g = 0; g < groups.size() && alive > 0; ++g) {
            const ScheduleGroup &group = groups[g];
            ++stats.groupsExecuted;
            stats.xbarActivations += group.activations();

            stats.adcConversions +=
                static_cast<std::uint64_t>(group.activations()) *
                alive;
            stats.conversionsSkipped +=
                static_cast<std::uint64_t>(group.activations()) *
                (blockSize - alive);

            stats.arrayEnergy +=
                group.activations() * xbarModel.arrayOpEnergy();
            for (const auto &seg : group.segments) {
                for (unsigned b = seg.bLo; b <= seg.bHi; ++b) {
                    for (unsigned i = 0; i < blockSize; ++i) {
                        if (done[i])
                            continue;
                        const unsigned start = cfg.adcHeadstart
                            ? refBitsFor(sliceOnes[b][i])
                            : xbarModel.adcResolutionBits();
                        stats.adcEnergy +=
                            xbarModel.conversionEnergy(start);
                    }
                }
            }

            for (unsigned i = 0; i < blockSize; ++i) {
                if (done[i])
                    continue;
                for (const auto &seg : group.segments) {
                    U256 mask;
                    for (unsigned b = seg.bLo; b <= seg.bHi; ++b)
                        mask.setBit(b);
                    const U256 biasPart = storedBias & mask;
                    for (const Element &el : rowsElems[i]) {
                        if (!ux.stored[static_cast<std::size_t>(
                                           el.col)]
                                 .bit(seg.k))
                            continue;
                        const U256 val = el.stored & mask;
                        if (val >= biasPart) {
                            acc[i].add(false,
                                       (val - biasPart) << seg.k);
                        } else {
                            acc[i].add(true,
                                       (biasPart - val) << seg.k);
                        }
                    }
                }
            }

            if (!cfg.earlyTermination)
                continue;
            const int remSig = schedule.maxRemainingSignificance(g);
            if (remSig < 0)
                break;
            const int sigCellBits = static_cast<int>(
                refBitsFor(std::min(encodedBits, vecBits)));
            const int bound = remSig + static_cast<int>(nBits) +
                              sigCellBits + 2;
            for (unsigned i = 0; i < blockSize; ++i) {
                if (done[i])
                    continue;
                U256 decoded = acc[i].mag;
                int boundDec = bound;
                if (cfg.anProtect) {
                    decoded.divSmall(cfg.anConstant);
                    boundDec = bound - anShift + 2;
                }
                if (settled(decoded, boundDec,
                            cfg.targetMantissaBits + 3)) {
                    done[i] = 1;
                    --alive;
                    ++stats.columnsEarlyTerminated;
                    y[i] = convert(acc[i], outScale, false);
                }
            }
        }

        for (unsigned i = 0; i < blockSize; ++i) {
            if (!done[i])
                y[i] = convert(acc[i], outScale, true);
        }

        stats.cycles = stats.groupsExecuted * cfg.size + 12;
        stats.latency = static_cast<double>(stats.cycles) /
                        cfg.xbar.fClkHz;
        stats.energy = stats.arrayEnergy + stats.adcEnergy;
        return stats;
    }

    ClusterConfig cfg;
    XbarModel xbarModel;
    AnCode an;
    unsigned blockSize = 0;
    int blockScale = 0;
    unsigned storedBits = 0;
    unsigned encodedBits = 0;
    U256 storedBias;
    ClusterProgramInfo progInfo;
    std::vector<std::vector<Element>> rowsElems;
    std::vector<RefSignedAcc> rowSumF;
    std::vector<std::vector<std::uint16_t>> sliceOnes;
};

/**
 * Straight-line fork of the pre-optimization HwCluster: per-read
 * level-buffer allocation, per-(row, slice) bias term recomputation,
 * sequential row scan. Noise streams are split exactly like the
 * parallel implementation (one child generator per row, in row
 * order), so noisy runs compare bit-for-bit too.
 */
class RefHwCluster
{
  public:
    explicit RefHwCluster(const HwCluster::Config &config)
        : cfg(config), an(config.anConstant, fxp::operandBits)
    {}

    void
    program(const MatrixBlock &block)
    {
        blockSize = block.size;
        std::vector<double> vals;
        vals.reserve(block.elems.size());
        for (const auto &t : block.elems)
            vals.push_back(t.val);
        const AlignedSet aligned = alignValues(vals);
        const BiasedSet biased = biasEncode(aligned);
        blockScale = aligned.scale;
        storedBias = cfg.anProtect ? an.encode(biased.bias())
                                   : U256::from(biased.bias());

        std::vector<U256> stored(
            static_cast<std::size_t>(blockSize) * blockSize,
            storedBias);
        rowSumF.assign(blockSize, {});
        nSlices = storedBias.bitLength();
        for (std::size_t e = 0; e < block.elems.size(); ++e) {
            const Triplet &t = block.elems[e];
            const U256 word = cfg.anProtect
                ? an.encode(biased.stored[e])
                : U256::from(biased.stored[e]);
            stored[static_cast<std::size_t>(t.row) * blockSize +
                   static_cast<std::size_t>(t.col)] = word;
            nSlices = std::max(nSlices, word.bitLength());
            rowSumF[static_cast<std::size_t>(t.row)].add(
                aligned.neg[e] != 0, U256::from(aligned.mag[e]));
        }

        slices.assign(nSlices, BinaryCrossbar(blockSize, blockSize));
        for (unsigned i = 0; i < blockSize; ++i) {
            for (unsigned j = 0; j < blockSize; ++j) {
                const U256 &word =
                    stored[static_cast<std::size_t>(i) * blockSize +
                           j];
                for (unsigned b = 0; b < nSlices; ++b) {
                    if (word.bit(b))
                        slices[b].set(j, i);
                }
            }
        }
        if (cfg.cic) {
            for (auto &xbar : slices)
                xbar.applyCic();
        }
    }

    HwClusterStats
    multiply(std::span<const double> x, std::span<double> y,
             Rng *rng = nullptr)
    {
        HwClusterStats stats;
        for (const auto &xbar : slices) {
            for (unsigned i = 0; i < blockSize; ++i)
                stats.cicInvertedColumns +=
                    xbar.columnInverted(i) ? 1 : 0;
        }

        const AlignedSet vx = alignValues(
            std::vector<double>(x.begin(), x.end()));
        const BiasedSet ux = biasEncode(vx);
        const unsigned vecSlices = ux.width();
        const int outScale = blockScale + vx.scale;

        const ColumnReadModel readModel(cfg.cell);

        std::vector<RefSignedAcc> acc(blockSize);
        for (unsigned i = 0; i < blockSize; ++i) {
            U256 init = rowSumF[i].mag << ux.biasBits;
            if (cfg.anProtect)
                init.mulSmall(cfg.anConstant);
            acc[i].neg = !rowSumF[i].neg;
            acc[i].mag = init;
            if (init.isZero())
                acc[i].neg = false;
        }

        struct VecSlice
        {
            unsigned k = 0;
            BitVec bits;
            std::uint64_t pc = 0;
        };
        std::vector<VecSlice> active;
        for (unsigned k = vecSlices; k-- > 0;) {
            BitVec slice(blockSize);
            for (unsigned j = 0; j < blockSize; ++j) {
                if (ux.stored[j].bit(k))
                    slice.set(j);
            }
            const auto pc =
                static_cast<std::uint64_t>(slice.popcount());
            if (pc == 0)
                continue;
            active.push_back({k, std::move(slice), pc});
        }

        // Row-ordered noise splits, identical to the parallel scan.
        std::vector<Rng> rowRngs;
        if (cfg.analogReads && rng) {
            rowRngs.reserve(blockSize);
            for (unsigned i = 0; i < blockSize; ++i)
                rowRngs.emplace_back(rng->next());
        }

        for (unsigned i = 0; i < blockSize; ++i) {
            Rng *rowRng = rowRngs.empty() ? nullptr : &rowRngs[i];
            for (const VecSlice &vs : active) {
                U256 reduced;
                for (unsigned b = 0; b < nSlices; ++b) {
                    std::int64_t count;
                    if (cfg.analogReads) {
                        // The original per-read level buffer, heap
                        // allocation and all.
                        std::vector<std::uint8_t> levels(blockSize,
                                                         0);
                        for (unsigned r = 0; r < blockSize; ++r)
                            levels[r] =
                                slices[b].get(r, i) ? 1 : 0;
                        count = readModel.read(levels, vs.bits,
                                               rowRng);
                    } else {
                        count = slices[b].readColumn(i, vs.bits);
                    }
                    if (slices[b].columnInverted(i)) {
                        count = static_cast<std::int64_t>(vs.pc) -
                                count;
                        count = std::max<std::int64_t>(count, 0);
                    }
                    U256 contrib(static_cast<std::uint64_t>(count));
                    reduced.addShifted(contrib, b);
                }
                ++stats.sliceWords;

                U256 biasTerm = storedBias;
                biasTerm.mulSmall(vs.pc);
                RefSignedAcc word;
                if (reduced >= biasTerm) {
                    word.neg = false;
                    word.mag = reduced - biasTerm;
                } else {
                    word.neg = true;
                    word.mag = biasTerm - reduced;
                }

                if (cfg.anProtect) {
                    switch (an.correctSigned(word.mag, word.neg)) {
                      case AnCode::Outcome::Clean:
                        ++stats.cleanWords;
                        break;
                      case AnCode::Outcome::Corrected:
                        ++stats.correctedWords;
                        break;
                      case AnCode::Outcome::Uncorrectable:
                        ++stats.uncorrectableWords;
                        break;
                    }
                } else {
                    ++stats.cleanWords;
                }

                acc[i].add(word.neg, word.mag << vs.k);
            }
        }

        for (unsigned i = 0; i < blockSize; ++i) {
            U256 mag = acc[i].mag;
            if (cfg.anProtect) {
                const std::uint64_t rem =
                    mag.divSmall(cfg.anConstant);
                if (rem != 0)
                    ++stats.uncorrectableWords;
            }
            y[i] = fixedToDouble(acc[i].neg, mag, outScale,
                                 cfg.rounding);
        }
        return stats;
    }

    HwCluster::Config cfg;
    AnCode an;
    unsigned blockSize = 0;
    unsigned nSlices = 0;
    int blockScale = 0;
    U256 storedBias;
    std::vector<RefSignedAcc> rowSumF;
    std::vector<BinaryCrossbar> slices;
};

MatrixBlock
randomBlock(Rng &rng, unsigned size, double density, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(density))
                continue;
            const double v =
                std::ldexp(rng.uniform(1.0, 2.0),
                           static_cast<int>(rng.range(0, expSpread))) *
                (rng.chance(0.5) ? -1.0 : 1.0);
            b.elems.push_back({static_cast<std::int32_t>(r),
                               static_cast<std::int32_t>(c), v});
        }
    }
    if (b.elems.empty())
        b.elems.push_back({0, 0, 1.0});
    return b;
}

std::vector<double>
randomVector(Rng &rng, unsigned size, int expSpread)
{
    std::vector<double> x(size);
    for (auto &v : x) {
        if (rng.chance(0.1)) {
            v = 0.0;
            continue;
        }
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, expSpread))) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return x;
}

void
expectStatsEqual(const ClusterStats &a, const ClusterStats &b)
{
    EXPECT_EQ(a.matrixSlices, b.matrixSlices);
    EXPECT_EQ(a.vectorSlices, b.vectorSlices);
    EXPECT_EQ(a.groupsTotal, b.groupsTotal);
    EXPECT_EQ(a.groupsExecuted, b.groupsExecuted);
    EXPECT_EQ(a.xbarActivations, b.xbarActivations);
    EXPECT_EQ(a.adcConversions, b.adcConversions);
    EXPECT_EQ(a.conversionsSkipped, b.conversionsSkipped);
    EXPECT_EQ(a.columnsEarlyTerminated, b.columnsEarlyTerminated);
    EXPECT_EQ(a.emptyColumns, b.emptyColumns);
    EXPECT_EQ(a.peeledVectorElements, b.peeledVectorElements);
    EXPECT_EQ(a.cycles, b.cycles);
    // Energy sums must match bit for bit: the optimized kernel keeps
    // the floating-point accumulation order of the original.
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.adcEnergy, b.adcEnergy);
    EXPECT_EQ(a.arrayEnergy, b.arrayEnergy);
}

void
expectBitwiseEqual(const std::vector<double> &a,
                   const std::vector<double> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << "y[" << i << "]: " << a[i] << " vs " << b[i];
    }
}

RoundingMode
roundingOf(unsigned idx)
{
    switch (idx) {
      case 0:
        return RoundingMode::TowardNegInf;
      case 1:
        return RoundingMode::TowardPosInf;
      case 2:
        return RoundingMode::TowardZero;
      default:
        return RoundingMode::NearestEven;
    }
}

SchedulePolicy
scheduleOf(unsigned idx)
{
    switch (idx) {
      case 0:
        return SchedulePolicy::Vertical;
      case 1:
        return SchedulePolicy::Diagonal;
      default:
        return SchedulePolicy::Hybrid;
    }
}

TEST(KernelBitExact, ClusterFullConfigSweep)
{
    Rng rng(0xC0FFEE);
    unsigned combo = 0;
    for (unsigned sched = 0; sched < 3; ++sched) {
        for (unsigned mode = 0; mode < 4; ++mode) {
            for (int an = 0; an < 2; ++an) {
                for (int et = 0; et < 2; ++et) {
                    ClusterConfig cfg;
                    cfg.size = 16;
                    cfg.schedule = scheduleOf(sched);
                    cfg.rounding = roundingOf(mode);
                    cfg.anProtect = an != 0;
                    cfg.earlyTermination = et != 0;
                    // Sweep the secondary toggles alongside.
                    cfg.cic = combo % 2 == 0;
                    cfg.adcHeadstart = combo % 3 != 0;
                    cfg.targetMantissaBits =
                        combo % 4 == 3 ? 24 : 53;
                    ++combo;

                    const int spread =
                        static_cast<int>(rng.below(50));
                    const MatrixBlock b = randomBlock(
                        rng, 16, rng.uniform(0.1, 0.7), spread);
                    const auto x = randomVector(rng, 16, spread);

                    Cluster opt(cfg);
                    RefCluster ref(cfg);
                    const ClusterProgramInfo pa = opt.program(b);
                    const ClusterProgramInfo pb = ref.program(b);
                    EXPECT_EQ(pa.matrixSlices, pb.matrixSlices);
                    EXPECT_EQ(pa.storedBits, pb.storedBits);
                    EXPECT_EQ(pa.scale, pb.scale);
                    EXPECT_EQ(pa.cellsWritten, pb.cellsWritten);
                    EXPECT_EQ(pa.cicInvertedColumns,
                              pb.cicInvertedColumns);
                    EXPECT_EQ(pa.cicCornerCases, pb.cicCornerCases);
                    EXPECT_EQ(pa.programEnergy, pb.programEnergy);

                    std::vector<double> ya(16), yb(16);
                    const ClusterStats sa = opt.multiply(x, ya);
                    const ClusterStats sb = ref.multiply(x, yb);
                    expectBitwiseEqual(ya, yb);
                    expectStatsEqual(sa, sb);
                }
            }
        }
    }
}

TEST(KernelBitExact, ClusterRepeatedMultiplies)
{
    // One programming, many vectors: the per-multiply caches must not
    // leak state between calls.
    Rng rng(0xFACE);
    ClusterConfig cfg;
    cfg.size = 16;
    Cluster opt(cfg);
    RefCluster ref(cfg);
    const MatrixBlock b = randomBlock(rng, 16, 0.4, 30);
    opt.program(b);
    ref.program(b);
    for (int rep = 0; rep < 8; ++rep) {
        const auto x = randomVector(rng, 16, 30);
        std::vector<double> ya(16), yb(16);
        const ClusterStats sa = opt.multiply(x, ya);
        const ClusterStats sb = ref.multiply(x, yb);
        expectBitwiseEqual(ya, yb);
        expectStatsEqual(sa, sb);
    }
}

TEST(KernelBitExact, HwClusterFullConfigSweep)
{
    Rng rng(0xBEEF);
    unsigned combo = 0;
    for (unsigned mode = 0; mode < 4; ++mode) {
        for (int an = 0; an < 2; ++an) {
            for (int cic = 0; cic < 2; ++cic) {
                for (int analog = 0; analog < 2; ++analog) {
                    HwCluster::Config cfg;
                    cfg.size = 8;
                    cfg.rounding = roundingOf(mode);
                    cfg.anProtect = an != 0;
                    cfg.cic = cic != 0;
                    cfg.analogReads = analog != 0;
                    ++combo;

                    const int spread =
                        static_cast<int>(rng.below(40));
                    const MatrixBlock b = randomBlock(
                        rng, 8, rng.uniform(0.2, 0.8), spread);
                    const auto x = randomVector(rng, 8, spread);

                    HwCluster opt(cfg);
                    RefHwCluster ref(cfg);
                    opt.program(b);
                    ref.program(b);

                    std::vector<double> ya(8), yb(8);
                    Rng ra(42 + combo), rb(42 + combo);
                    const HwClusterStats sa =
                        opt.multiply(x, ya, &ra);
                    const HwClusterStats sb =
                        ref.multiply(x, yb, &rb);
                    expectBitwiseEqual(ya, yb);
                    EXPECT_EQ(sa.sliceWords, sb.sliceWords);
                    EXPECT_EQ(sa.cleanWords, sb.cleanWords);
                    EXPECT_EQ(sa.correctedWords, sb.correctedWords);
                    EXPECT_EQ(sa.uncorrectableWords,
                              sb.uncorrectableWords);
                    EXPECT_EQ(sa.cicInvertedColumns,
                              sb.cicInvertedColumns);
                }
            }
        }
    }
}

TEST(KernelBitExact, HwClusterNoisyReads)
{
    // Programming noise active: the allocation-free read path must
    // consume the per-row generators in exactly the original draw
    // order, or the noise realizations (and thus y) diverge.
    Rng rng(0x5EED);
    HwCluster::Config cfg;
    cfg.size = 8;
    cfg.analogReads = true;
    cfg.cell.progErrorSigma = 0.02;
    const MatrixBlock b = randomBlock(rng, 8, 0.5, 20);
    const auto x = randomVector(rng, 8, 20);

    HwCluster opt(cfg);
    RefHwCluster ref(cfg);
    opt.program(b);
    ref.program(b);
    for (int rep = 0; rep < 4; ++rep) {
        std::vector<double> ya(8), yb(8);
        Rng ra(1000 + rep), rb(1000 + rep);
        const HwClusterStats sa = opt.multiply(x, ya, &ra);
        const HwClusterStats sb = ref.multiply(x, yb, &rb);
        expectBitwiseEqual(ya, yb);
        EXPECT_EQ(sa.sliceWords, sb.sliceWords);
    }
}

} // namespace
} // namespace msc
