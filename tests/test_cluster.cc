/**
 * @file
 * Bit-exactness and behavior tests for the cluster model.
 *
 * The central invariant (Sections III-B, IV): with ideal devices,
 * the cluster's block MVM equals round(sum_j A_ij x_j) with a single
 * rounding of the exact sum, for every rounding mode, schedule
 * policy, and with or without early termination and AN protection.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/cluster.hh"
#include "util/random.hh"

namespace msc {
namespace {

/** Build a random block of the given size/density/exponent spread. */
MatrixBlock
randomBlock(Rng &rng, unsigned size, double density, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(density))
                continue;
            const int e = static_cast<int>(rng.range(0, expSpread));
            const double v = std::ldexp(rng.uniform(1.0, 2.0), e) *
                             (rng.chance(0.5) ? -1.0 : 1.0);
            b.elems.push_back({static_cast<std::int32_t>(r),
                               static_cast<std::int32_t>(c), v});
        }
    }
    return b;
}

std::vector<double>
randomVector(Rng &rng, unsigned size, int expSpread,
             double zeroProb = 0.1)
{
    std::vector<double> x(size);
    for (auto &v : x) {
        if (rng.chance(zeroProb)) {
            v = 0.0;
            continue;
        }
        const int e = static_cast<int>(rng.range(0, expSpread));
        v = std::ldexp(rng.uniform(1.0, 2.0), e) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return x;
}

/** Dense row gather for the exactDot oracle. */
void
oracle(const MatrixBlock &b, const std::vector<double> &x,
       RoundingMode mode, std::vector<double> &out)
{
    const unsigned n = b.size;
    out.assign(n, 0.0);
    std::vector<std::vector<double>> rowsA(n), rowsX(n);
    for (const auto &t : b.elems) {
        rowsA[static_cast<std::size_t>(t.row)].push_back(t.val);
        rowsX[static_cast<std::size_t>(t.row)].push_back(
            x[static_cast<std::size_t>(t.col)]);
    }
    for (unsigned i = 0; i < n; ++i) {
        if (!rowsA[i].empty()) {
            out[i] = exactDot(rowsA[i].data(), rowsX[i].data(),
                              rowsA[i].size(), mode);
        }
    }
}

ClusterConfig
smallConfig(unsigned size)
{
    ClusterConfig cfg;
    cfg.size = size;
    return cfg;
}

TEST(Cluster, TinyBlockKnownValues)
{
    ClusterConfig cfg = smallConfig(4);
    Cluster cluster(cfg);
    MatrixBlock b;
    b.size = 4;
    b.elems = {{0, 0, 2.0}, {0, 1, -1.0}, {1, 1, 0.5},
               {2, 0, 4.0}, {2, 2, -8.0}, {3, 3, 1.0}};
    cluster.program(b);
    const std::vector<double> x{1.0, 2.0, 3.0, -4.0};
    std::vector<double> y(4);
    cluster.multiply(x, y);
    EXPECT_EQ(y[0], 2.0 * 1 - 1.0 * 2);
    EXPECT_EQ(y[1], 0.5 * 2);
    EXPECT_EQ(y[2], 4.0 * 1 - 8.0 * 3);
    EXPECT_EQ(y[3], 1.0 * -4.0);
}

TEST(Cluster, EmptyRowsYieldZeroAndSettleImmediately)
{
    Cluster cluster(smallConfig(8));
    MatrixBlock b;
    b.size = 8;
    b.elems = {{3, 3, 5.0}};
    cluster.program(b);
    std::vector<double> x(8, 1.0), y(8, -1.0);
    const ClusterStats stats = cluster.multiply(x, y);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(y[i], i == 3 ? 5.0 : 0.0);
    EXPECT_EQ(stats.emptyColumns, 7u);
}

TEST(Cluster, MatchesExactDotAcrossPolicies)
{
    Rng rng(101);
    for (auto policy : {SchedulePolicy::Vertical,
                        SchedulePolicy::Diagonal,
                        SchedulePolicy::Hybrid}) {
        ClusterConfig cfg = smallConfig(16);
        cfg.schedule = policy;
        Cluster cluster(cfg);
        for (int trial = 0; trial < 8; ++trial) {
            const MatrixBlock b = randomBlock(rng, 16, 0.4, 20);
            cluster.program(b);
            const auto x = randomVector(rng, 16, 20);
            std::vector<double> y(16), ref;
            cluster.multiply(x, y);
            oracle(b, x, cfg.rounding, ref);
            for (unsigned i = 0; i < 16; ++i)
                EXPECT_EQ(y[i], ref[i])
                    << toString(policy) << " row " << i
                    << " trial " << trial;
        }
    }
}

TEST(Cluster, MatchesExactDotAcrossRoundingModes)
{
    Rng rng(103);
    for (auto mode : {RoundingMode::TowardNegInf,
                      RoundingMode::TowardPosInf,
                      RoundingMode::TowardZero,
                      RoundingMode::NearestEven}) {
        ClusterConfig cfg = smallConfig(16);
        cfg.rounding = mode;
        Cluster cluster(cfg);
        for (int trial = 0; trial < 8; ++trial) {
            const MatrixBlock b = randomBlock(rng, 16, 0.5, 30);
            cluster.program(b);
            const auto x = randomVector(rng, 16, 30);
            std::vector<double> y(16), ref;
            cluster.multiply(x, y);
            oracle(b, x, mode, ref);
            for (unsigned i = 0; i < 16; ++i)
                EXPECT_EQ(y[i], ref[i]) << "mode "
                    << static_cast<int>(mode) << " row " << i;
        }
    }
}

TEST(Cluster, MatchesExactDotWithWideExponents)
{
    // Full 64-bit exponent spread in both the block and the vector:
    // the stress case for alignment and early termination.
    Rng rng(107);
    Cluster cluster(smallConfig(16));
    for (int trial = 0; trial < 10; ++trial) {
        const MatrixBlock b = randomBlock(rng, 16, 0.6, 64);
        cluster.program(b);
        const auto x = randomVector(rng, 16, 64);
        std::vector<double> y(16), ref;
        cluster.multiply(x, y);
        oracle(b, x, RoundingMode::TowardNegInf, ref);
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(y[i], ref[i]) << "row " << i;
    }
}

TEST(Cluster, EarlyTerminationDoesNotChangeResults)
{
    Rng rng(109);
    ClusterConfig with = smallConfig(16);
    with.earlyTermination = true;
    ClusterConfig without = smallConfig(16);
    without.earlyTermination = false;
    Cluster cWith(with), cWithout(without);
    std::uint64_t convWith = 0, convWithout = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const MatrixBlock b = randomBlock(rng, 16, 0.5, 40);
        cWith.program(b);
        cWithout.program(b);
        const auto x = randomVector(rng, 16, 40);
        std::vector<double> y1(16), y2(16);
        convWith += cWith.multiply(x, y1).adcConversions;
        convWithout += cWithout.multiply(x, y2).adcConversions;
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(y1[i], y2[i]);
    }
    // Early termination must actually save conversions.
    EXPECT_LT(convWith, convWithout);
}

TEST(Cluster, AnProtectionDoesNotChangeResults)
{
    Rng rng(113);
    ClusterConfig with = smallConfig(16);
    with.anProtect = true;
    ClusterConfig without = smallConfig(16);
    without.anProtect = false;
    Cluster cWith(with), cWithout(without);
    for (int trial = 0; trial < 10; ++trial) {
        const MatrixBlock b = randomBlock(rng, 16, 0.5, 30);
        cWith.program(b);
        cWithout.program(b);
        const auto x = randomVector(rng, 16, 30);
        std::vector<double> y1(16), y2(16);
        cWith.multiply(x, y1);
        cWithout.multiply(x, y2);
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(y1[i], y2[i]);
    }
}

TEST(Cluster, ProgramInfoIsSane)
{
    Rng rng(127);
    Cluster cluster(smallConfig(32));
    const MatrixBlock b = randomBlock(rng, 32, 0.3, 10);
    const ClusterProgramInfo info = cluster.program(b);
    // 10-bit exponent spread: 53 + <=10 mantissa bits + sign + 9-bit
    // AN code.
    EXPECT_GE(info.matrixSlices, 54u);
    EXPECT_LE(info.matrixSlices, 127u);
    EXPECT_GT(info.cellsWritten, 0u);
    EXPECT_GT(info.programTime, 0.0);
    EXPECT_GT(info.programEnergy, 0.0);
    EXPECT_EQ(info.scale, cluster.programInfo().scale);
}

TEST(Cluster, StatsAccounting)
{
    Rng rng(131);
    Cluster cluster(smallConfig(16));
    const MatrixBlock b = randomBlock(rng, 16, 0.5, 8);
    cluster.program(b);
    const auto x = randomVector(rng, 16, 8, 0.0);
    std::vector<double> y(16);
    const ClusterStats s = cluster.multiply(x, y);
    EXPECT_GT(s.matrixSlices, 0u);
    EXPECT_GT(s.vectorSlices, 0u);
    EXPECT_LE(s.groupsExecuted, s.groupsTotal);
    EXPECT_GT(s.xbarActivations, 0u);
    EXPECT_GT(s.adcConversions, 0u);
    EXPECT_GT(s.energy, 0.0);
    EXPECT_GT(s.latency, 0.0);
    EXPECT_NEAR(s.energy, s.adcEnergy + s.arrayEnergy, 1e-18);
    EXPECT_EQ(s.cycles, s.groupsExecuted * 16 + 12);
}

TEST(Cluster, VectorExponentPeeling)
{
    Cluster cluster(smallConfig(8));
    MatrixBlock b;
    b.size = 8;
    for (std::int32_t i = 0; i < 8; ++i)
        b.elems.push_back({i, i, 1.0});
    cluster.program(b);
    // One vector element 2^100 away: must be peeled, not computed.
    std::vector<double> x(8, 1.0);
    x[5] = 0x1.0p100;
    std::vector<double> y(8);
    std::vector<std::int32_t> peeled;
    const ClusterStats s = cluster.multiply(x, y, &peeled);
    EXPECT_EQ(s.peeledVectorElements, 1u);
    ASSERT_EQ(peeled.size(), 1u);
    EXPECT_EQ(peeled[0], 5);
    // The peeled column's contribution is absent.
    EXPECT_EQ(y[5], 0.0);
    EXPECT_EQ(y[4], 1.0);
}

TEST(Cluster, RejectsMisuse)
{
    Cluster cluster(smallConfig(8));
    std::vector<double> x(8), y(8);
    EXPECT_THROW(cluster.multiply(x, y), FatalError); // unprogrammed

    MatrixBlock tooBig;
    tooBig.size = 16;
    EXPECT_THROW(cluster.program(tooBig), FatalError);

    MatrixBlock outOfRange;
    outOfRange.size = 8;
    outOfRange.elems = {{9, 0, 1.0}};
    EXPECT_THROW(cluster.program(outOfRange), FatalError);

    MatrixBlock wideExp;
    wideExp.size = 8;
    wideExp.elems = {{0, 0, 1.0}, {1, 1, 0x1.0p80}};
    EXPECT_THROW(cluster.program(wideExp), FatalError);

    MatrixBlock ok;
    ok.size = 8;
    ok.elems = {{0, 0, 1.0}};
    cluster.program(ok);
    std::vector<double> xb(4), yb(4);
    EXPECT_THROW(cluster.multiply(xb, yb), FatalError);
}

TEST(Cluster, SchedulePoliciesTradeStepsForActivations)
{
    Rng rng(137);
    const MatrixBlock b = randomBlock(rng, 16, 0.6, 25);
    const auto x = randomVector(rng, 16, 25, 0.0);
    std::vector<double> y(16);

    ClusterStats stats[3];
    SchedulePolicy policies[3] = {SchedulePolicy::Vertical,
                                  SchedulePolicy::Diagonal,
                                  SchedulePolicy::Hybrid};
    for (int p = 0; p < 3; ++p) {
        ClusterConfig cfg = smallConfig(16);
        cfg.schedule = policies[p];
        Cluster cluster(cfg);
        cluster.program(b);
        stats[p] = cluster.multiply(x, y);
    }
    // Diagonal saves activations relative to vertical; hybrid sits
    // between (weak inequalities: early termination is data
    // dependent).
    EXPECT_LE(stats[1].xbarActivations, stats[0].xbarActivations);
    EXPECT_LE(stats[1].xbarActivations, stats[2].xbarActivations);
    EXPECT_LE(stats[0].groupsExecuted, stats[2].groupsExecuted);
    EXPECT_LE(stats[2].groupsExecuted, stats[1].groupsExecuted);
}

TEST(Cluster, BiggerBlocksStillExact)
{
    Rng rng(139);
    Cluster cluster(smallConfig(64));
    const MatrixBlock b = randomBlock(rng, 64, 0.15, 48);
    cluster.program(b);
    const auto x = randomVector(rng, 64, 48);
    std::vector<double> y(64), ref;
    cluster.multiply(x, y);
    oracle(b, x, RoundingMode::TowardNegInf, ref);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(y[i], ref[i]) << "row " << i;
}

TEST(Cluster, NegativeHeavyBlocksExact)
{
    // All-negative coefficients stress the bias encoding.
    Rng rng(149);
    Cluster cluster(smallConfig(16));
    MatrixBlock b;
    b.size = 16;
    for (unsigned r = 0; r < 16; ++r) {
        for (unsigned c = 0; c < 16; ++c) {
            if (rng.chance(0.5)) {
                b.elems.push_back(
                    {static_cast<std::int32_t>(r),
                     static_cast<std::int32_t>(c),
                     -std::ldexp(rng.uniform(1.0, 2.0),
                                 static_cast<int>(rng.range(0, 10)))});
            }
        }
    }
    cluster.program(b);
    const auto x = randomVector(rng, 16, 10);
    std::vector<double> y(16), ref;
    cluster.multiply(x, y);
    oracle(b, x, RoundingMode::TowardNegInf, ref);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(y[i], ref[i]);
}

TEST(Cluster, CancellationHeavyRowsExact)
{
    // Rows designed so large terms cancel: the result's leading one
    // is far below the operands; early termination must not fire
    // prematurely.
    Cluster cluster(smallConfig(4));
    MatrixBlock b;
    b.size = 4;
    b.elems = {{0, 0, 0x1.0p40}, {0, 1, -0x1.0p40}, {0, 2, 1.0},
               {1, 0, 0x1.fffffffffffffp20},
               {1, 1, -0x1.fffffffffffffp20}, {1, 2, 0x1.0p-20}};
    cluster.program(b);
    const std::vector<double> x{1.0, 1.0, 1.0, 0.0};
    std::vector<double> y(4);
    cluster.multiply(x, y);
    EXPECT_EQ(y[0], 1.0);
    EXPECT_EQ(y[1], 0x1.0p-20);
}

} // namespace
} // namespace msc
