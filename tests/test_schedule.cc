/**
 * @file
 * Tests for activation scheduling (Section IV-B, Figure 6).
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/schedule.hh"
#include "util/logging.hh"

namespace msc {
namespace {

/** Every (b, k) cell must be scheduled exactly once, with at most
 *  one cell per matrix slice per group. */
void
checkPartition(const ActivationSchedule &sched)
{
    std::set<std::pair<unsigned, unsigned>> seen;
    for (const auto &g : sched.groups()) {
        std::set<unsigned> bUsed;
        for (const auto &seg : g.segments) {
            ASSERT_LE(seg.bLo, seg.bHi);
            ASSERT_LT(seg.bHi, sched.matrixSlices());
            ASSERT_LT(seg.k, sched.vectorSlices());
            for (unsigned b = seg.bLo; b <= seg.bHi; ++b) {
                EXPECT_TRUE(bUsed.insert(b).second)
                    << "matrix slice " << b
                    << " used twice in one group";
                EXPECT_TRUE(seen.insert({b, seg.k}).second)
                    << "cell (" << b << "," << seg.k
                    << ") scheduled twice";
            }
        }
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(sched.matrixSlices()) *
                  sched.vectorSlices());
}

TEST(Schedule, Figure6Vertical)
{
    const ActivationSchedule s(4, 4, SchedulePolicy::Vertical);
    checkPartition(s);
    EXPECT_EQ(s.groups().size(), 4u);
    EXPECT_EQ(s.totalActivations(), 16u);
    const auto cost = s.costForThreshold(2);
    EXPECT_EQ(cost.timeSteps, 4u);
    EXPECT_EQ(cost.activations, 16u);
}

TEST(Schedule, Figure6Diagonal)
{
    const ActivationSchedule s(4, 4, SchedulePolicy::Diagonal);
    checkPartition(s);
    EXPECT_EQ(s.groups().size(), 7u);
    const auto cost = s.costForThreshold(2);
    EXPECT_EQ(cost.timeSteps, 5u);
    EXPECT_EQ(cost.activations, 13u);
}

TEST(Schedule, Figure6Hybrid)
{
    const ActivationSchedule s(4, 4, SchedulePolicy::Hybrid, 2);
    checkPartition(s);
    const auto cost = s.costForThreshold(2);
    EXPECT_EQ(cost.timeSteps, 4u);
    EXPECT_EQ(cost.activations, 14u);
}

TEST(Schedule, DiagonalGroupsAreAntiDiagonals)
{
    const ActivationSchedule s(5, 3, SchedulePolicy::Diagonal);
    checkPartition(s);
    // Each group has a single significance value.
    for (const auto &g : s.groups()) {
        for (const auto &seg : g.segments) {
            for (unsigned b = seg.bLo; b <= seg.bHi; ++b)
                EXPECT_EQ(b + seg.k, g.maxSignificance);
        }
    }
    EXPECT_EQ(s.groups().size(), 5u + 3u - 1u);
}

TEST(Schedule, VerticalGroupsShareOneVectorSlice)
{
    const ActivationSchedule s(7, 5, SchedulePolicy::Vertical);
    checkPartition(s);
    ASSERT_EQ(s.groups().size(), 5u);
    // MSB-first order.
    unsigned expectK = 4;
    for (const auto &g : s.groups()) {
        ASSERT_EQ(g.segments.size(), 1u);
        EXPECT_EQ(g.segments[0].k, expectK);
        EXPECT_EQ(g.segments[0].width(), 7u);
        --expectK;
    }
}

TEST(Schedule, SignificanceIsMonotoneNonIncreasing)
{
    for (auto policy : {SchedulePolicy::Vertical,
                        SchedulePolicy::Diagonal,
                        SchedulePolicy::Hybrid}) {
        const ActivationSchedule s(13, 9, policy, 3);
        unsigned last = 1u << 30;
        for (const auto &g : s.groups()) {
            EXPECT_LE(g.maxSignificance, last);
            last = g.maxSignificance;
        }
    }
}

TEST(Schedule, MaxRemainingSignificance)
{
    const ActivationSchedule s(4, 4, SchedulePolicy::Diagonal);
    // Groups are anti-diagonals with significance 6,5,...,0.
    EXPECT_EQ(s.maxRemainingSignificance(0), 5);
    EXPECT_EQ(s.maxRemainingSignificance(5), 0);
    EXPECT_EQ(s.maxRemainingSignificance(6), -1);
    EXPECT_EQ(s.maxRemainingSignificance(99), -1);
}

TEST(Schedule, HybridLiesBetweenVerticalAndDiagonal)
{
    // Energy (activations at a threshold) ordering: diagonal <=
    // hybrid <= vertical; latency (steps) ordering reversed.
    const unsigned B = 20, K = 16;
    const ActivationSchedule v(B, K, SchedulePolicy::Vertical);
    const ActivationSchedule d(B, K, SchedulePolicy::Diagonal);
    const ActivationSchedule h(B, K, SchedulePolicy::Hybrid, 2);
    for (unsigned thr = 2; thr < B + K - 2; thr += 3) {
        const auto cv = v.costForThreshold(thr);
        const auto cd = d.costForThreshold(thr);
        const auto ch = h.costForThreshold(thr);
        EXPECT_LE(cd.activations, ch.activations) << "thr=" << thr;
        EXPECT_LE(ch.activations, cv.activations) << "thr=" << thr;
        EXPECT_LE(cv.timeSteps, ch.timeSteps) << "thr=" << thr;
        EXPECT_LE(ch.timeSteps, cd.timeSteps) << "thr=" << thr;
    }
}

TEST(Schedule, LargerSkewApproachesDiagonal)
{
    const unsigned B = 24, K = 12;
    const ActivationSchedule h2(B, K, SchedulePolicy::Hybrid, 2);
    const ActivationSchedule h4(B, K, SchedulePolicy::Hybrid, 4);
    // Smaller skew = closer to diagonal = fewer activations at a
    // mid threshold but more steps.
    const auto c2 = h2.costForThreshold(12);
    const auto c4 = h4.costForThreshold(12);
    EXPECT_LE(c2.activations, c4.activations);
    EXPECT_GE(c2.timeSteps, c4.timeSteps);
}

TEST(Schedule, ThresholdZeroRunsEverything)
{
    const ActivationSchedule s(6, 6, SchedulePolicy::Hybrid, 2);
    const auto cost = s.costForThreshold(0);
    EXPECT_EQ(cost.timeSteps, s.groups().size());
    EXPECT_EQ(cost.activations, s.totalActivations());
}

TEST(Schedule, ThresholdAboveMaxRunsNothing)
{
    const ActivationSchedule s(6, 6, SchedulePolicy::Vertical);
    const auto cost = s.costForThreshold(11);
    EXPECT_EQ(cost.timeSteps, 0u);
    EXPECT_EQ(cost.activations, 0u);
}

TEST(Schedule, SingleSliceGrids)
{
    const ActivationSchedule a(1, 8, SchedulePolicy::Hybrid, 2);
    checkPartition(a);
    EXPECT_EQ(a.groups().size(), 8u);
    const ActivationSchedule b(8, 1, SchedulePolicy::Diagonal);
    checkPartition(b);
    EXPECT_EQ(b.groups().size(), 8u);
}

TEST(Schedule, RejectsBadInputs)
{
    EXPECT_THROW(ActivationSchedule(0, 4, SchedulePolicy::Vertical),
                 FatalError);
    EXPECT_THROW(ActivationSchedule(4, 4, SchedulePolicy::Hybrid, 1),
                 FatalError);
}

TEST(Schedule, PartitionPropertyLargeGrids)
{
    for (auto policy : {SchedulePolicy::Vertical,
                        SchedulePolicy::Diagonal,
                        SchedulePolicy::Hybrid}) {
        for (unsigned B : {1u, 2u, 37u, 127u}) {
            for (unsigned K : {1u, 19u, 118u}) {
                checkPartition(ActivationSchedule(B, K, policy, 2));
            }
        }
    }
}

} // namespace
} // namespace msc
