/**
 * @file
 * Solver-as-a-service runtime tests (service/service.hh +
 * service/scheduler.hh + service/prepare_cache.hh), plus the
 * lockstep multi-RHS CG the coalescer dispatches into
 * (solver/block.hh).
 *
 * The contracts pinned here:
 *   - a coalesced request returns exactly the bits a solo solve
 *     produces, at every thread count (the batching window is a
 *     throughput lever, never a numerics knob);
 *   - window = 1 degenerates to sequential dispatch bit-identically;
 *   - requests with different prepare-cache keys never share a
 *     panel;
 *   - cancel/deadline land mid-queue (reaped, ticket released) and
 *     mid-panel (one column stops, siblings bitwise unchanged);
 *   - admission rejects with a structured Overloaded status -- full
 *     queue and exhausted tenant tickets alike -- and a flooding
 *     tenant cannot starve another tenant's admission;
 *   - the scheduler's decision log replays identically for a fixed
 *     submission sequence;
 *   - the prepare cache keys on matrix content + placement config
 *     (not thread count), builds once, and never evicts an entry a
 *     solve still holds (the ASan-verified invariant);
 *   - ChaosService*: the ResilientSolver escalation ladder honors
 *     stop requests even when every workspace grant fails (the
 *     regression this PR fixes), and the whole service keeps its
 *     accounting invariants under a chaos storm with worker threads
 *     (the TSan soak).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "accel/cluster_operator.hh"
#include "fault/chaos.hh"
#include "fault/faulty_operator.hh"
#include "runtime/exec_context.hh"
#include "service/prepare_cache.hh"
#include "service/scheduler.hh"
#include "service/service.hh"
#include "solver/block.hh"
#include "solver/resilient.hh"
#include "solver/solver.hh"
#include "sparse/binio.hh"
#include "sparse/gen.hh"
#include "sparse/matrix_market.hh"
#include "util/random.hh"
#include "util/threadpool.hh"

namespace msc {
namespace {

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

std::vector<double>
seededRhs(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> b(n);
    for (double &v : b)
        v = 2.0 * rng.uniform() - 1.0;
    return b;
}

OperatorConfig
clusterBackend()
{
    OperatorConfig cfg;
    cfg.backend = ServiceBackend::ClusterBitExact;
    return cfg;
}

/** Solo reference solve through the same operator the service
 *  builds for @p cfg (fresh operator per call, fresh workspace). */
SolverResult
directSolve(const Csr &m, const OperatorConfig &opCfg,
            std::span<const double> b, std::vector<double> &x,
            SolverKind kind = SolverKind::Cg,
            const SolverConfig &scfg = {})
{
    x.assign(b.size(), 0.0);
    if (opCfg.backend == ServiceBackend::ClusterBitExact) {
        ClusterArithmeticOperator op(m, opCfg.blocking,
                                     opCfg.cluster);
        if (kind == SolverKind::Gmres)
            return gmres(op, b, x, scfg);
        if (kind == SolverKind::BiCgStab)
            return biCgStab(op, b, x, scfg);
        return conjugateGradient(op, b, x, scfg);
    }
    CsrOperator op(m);
    if (kind == SolverKind::Gmres)
        return gmres(op, b, x, scfg);
    if (kind == SolverKind::BiCgStab)
        return biCgStab(op, b, x, scfg);
    return conjugateGradient(op, b, x, scfg);
}

void
expectBitwiseEqual(std::span<const double> a,
                   std::span<const double> b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << ": component " << i;
}

// --- lockstep multi-RHS CG (the coalescer's solve kernel) -----------

TEST(ServiceLockstep, MatchesStandaloneCgBitwise)
{
    const Csr m = spdMatrix(96, 101);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned k = 5;

    std::vector<double> B(n * k), X(n * k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        const auto b = seededRhs(n, 7000 + c);
        std::copy(b.begin(), b.end(), B.begin() + c * n);
    }

    ClusterArithmeticOperator op(m, BlockingConfig{},
                                 ClusterConfig{});
    const auto results = lockstepConjugateGradient(op, B, X, k);
    ASSERT_EQ(results.size(), k);

    for (unsigned c = 0; c < k; ++c) {
        std::vector<double> xRef(n, 0.0);
        ClusterArithmeticOperator ref(m, BlockingConfig{},
                                      ClusterConfig{});
        const SolverResult solo = conjugateGradient(
            ref, std::span<const double>(B).subspan(c * n, n),
            xRef);
        const SolverResult &got = results[c];
        EXPECT_EQ(got.status, solo.status) << "column " << c;
        EXPECT_EQ(got.converged, solo.converged) << "column " << c;
        EXPECT_EQ(got.iterations, solo.iterations) << "column " << c;
        EXPECT_EQ(got.relResidual, solo.relResidual)
            << "column " << c;
        EXPECT_EQ(got.dotCalls, solo.dotCalls) << "column " << c;
        EXPECT_EQ(got.axpyCalls, solo.axpyCalls) << "column " << c;
        expectBitwiseEqual(
            std::span<const double>(X).subspan(c * n, n), xRef,
            "lockstep column");
    }
}

TEST(ServiceLockstep, PerColumnControlsHonored)
{
    const Csr m = spdMatrix(64, 103);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned k = 3;

    std::vector<double> B(n * k), X(n * k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        const auto b = seededRhs(n, 7100 + c);
        std::copy(b.begin(), b.end(), B.begin() + c * n);
    }

    std::vector<LockstepColumnControl> ctl(k);
    ctl[0].tolerance = 1e-4; //!< loose: stops early
    ctl[1].maxIterations = 2;
    ctl[2].tolerance = 1e-10;

    CsrOperator op(m);
    const auto results = lockstepConjugateGradient(op, B, X, k, ctl);
    ASSERT_EQ(results.size(), k);

    EXPECT_EQ(results[0].status, SolveStatus::Converged);
    EXPECT_EQ(results[1].status, SolveStatus::MaxIterations);
    EXPECT_EQ(results[1].iterations, 2);
    EXPECT_EQ(results[2].status, SolveStatus::Converged);
    EXPECT_LT(results[0].iterations, results[2].iterations);

    // Every column still matches its solo run under the same
    // control, including the early-terminated ones.
    for (unsigned c = 0; c < k; ++c) {
        SolverConfig scfg;
        scfg.tolerance = ctl[c].tolerance;
        scfg.maxIterations = ctl[c].maxIterations;
        std::vector<double> xRef(n, 0.0);
        CsrOperator ref(m);
        const SolverResult solo = conjugateGradient(
            ref, std::span<const double>(B).subspan(c * n, n), xRef,
            scfg);
        EXPECT_EQ(results[c].iterations, solo.iterations);
        expectBitwiseEqual(
            std::span<const double>(X).subspan(c * n, n), xRef,
            "controlled column");
    }
}

TEST(ServiceLockstep, ZeroRhsColumnConvergesImmediately)
{
    const Csr m = spdMatrix(64, 107);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned k = 2;

    std::vector<double> B(n * k, 0.0), X(n * k, 1.0);
    const auto b1 = seededRhs(n, 7200);
    std::copy(b1.begin(), b1.end(), B.begin() + n);

    CsrOperator op(m);
    const auto results = lockstepConjugateGradient(op, B, X, k);
    EXPECT_EQ(results[0].status, SolveStatus::Converged);
    EXPECT_EQ(results[0].iterations, 0);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(X[i], 0.0);

    // Same warm start (x0 = 1) as the panel's sibling column.
    std::vector<double> xRef(n, 1.0);
    CsrOperator ref(m);
    conjugateGradient(ref, b1, xRef);
    expectBitwiseEqual(std::span<const double>(X).subspan(n, n),
                       xRef, "sibling of zero column");
}

TEST(ServiceLockstep, CancelledColumnLeavesSiblingsBitwise)
{
    const Csr m = spdMatrix(96, 109);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned k = 4;

    std::vector<double> B(n * k), X(n * k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        const auto b = seededRhs(n, 7300 + c);
        std::copy(b.begin(), b.end(), B.begin() + c * n);
    }

    ExecContext cancelCtx;
    cancelCtx.cancelAfterChecks(5);
    std::vector<LockstepColumnControl> ctl(k);
    ctl[1].exec = &cancelCtx;

    CsrOperator op(m);
    const auto results = lockstepConjugateGradient(op, B, X, k, ctl);

    EXPECT_EQ(results[1].status, SolveStatus::Cancelled);
    EXPECT_FALSE(results[1].converged);

    for (unsigned c = 0; c < k; ++c) {
        if (c == 1)
            continue;
        std::vector<double> xRef(n, 0.0);
        CsrOperator ref(m);
        const SolverResult solo = conjugateGradient(
            ref, std::span<const double>(B).subspan(c * n, n),
            xRef);
        EXPECT_EQ(results[c].status, solo.status);
        EXPECT_EQ(results[c].iterations, solo.iterations);
        expectBitwiseEqual(
            std::span<const double>(X).subspan(c * n, n), xRef,
            "sibling of cancelled column");
        EXPECT_LT(results[1].iterations, solo.iterations);
    }
}

// --- service: single requests and coalesced panels ------------------

TEST(Service, SingleRequestMatchesDirectSolveBitwise)
{
    const Csr m = spdMatrix(96, 201);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    const auto b = seededRhs(n, 8000);

    SolverService svc;
    SolveRequest req;
    req.matrix = &m;
    req.b = b;
    RequestHandle h = svc.submit(req);
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(h.state(), RequestState::Queued);

    svc.runUntilIdle();
    const RequestResult &r = h.wait();
    EXPECT_EQ(r.status, SolveStatus::Converged);
    EXPECT_FALSE(r.coalesced);
    EXPECT_EQ(r.batchWidth, 1u);
    EXPECT_FALSE(r.cacheHit);

    std::vector<double> xRef;
    const SolverResult solo = directSolve(m, {}, b, xRef);
    EXPECT_EQ(r.solve.iterations, solo.iterations);
    EXPECT_EQ(r.solve.relResidual, solo.relResidual);
    expectBitwiseEqual(r.x, xRef, "single request");

    // Second request on the same system: prepared operator comes
    // from the cache, answer stays bitwise identical.
    RequestHandle h2 = svc.submit(req);
    svc.runUntilIdle();
    EXPECT_TRUE(h2.wait().cacheHit);
    expectBitwiseEqual(h2.wait().x, xRef, "cache-warm repeat");

    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.submitted, 2u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.rejected, 0u);
    EXPECT_EQ(svc.cacheStats().misses, 1u);
    EXPECT_EQ(svc.cacheStats().hits, 1u);
}

TEST(Service, NonCgKindsMatchDirectSolvers)
{
    const Csr m = spdMatrix(64, 203);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    const auto b = seededRhs(n, 8050);

    SolverService svc;
    for (SolverKind kind :
         {SolverKind::BiCgStab, SolverKind::Gmres}) {
        SolveRequest req;
        req.matrix = &m;
        req.b = b;
        req.kind = kind;
        req.tolerance = 1e-8;
        RequestHandle h = svc.submit(req);
        svc.runUntilIdle();
        const RequestResult &r = h.wait();
        EXPECT_EQ(r.status, SolveStatus::Converged);

        SolverConfig scfg;
        scfg.tolerance = 1e-8;
        std::vector<double> xRef;
        const SolverResult solo =
            directSolve(m, {}, b, xRef, kind, scfg);
        EXPECT_EQ(r.solve.iterations, solo.iterations);
        expectBitwiseEqual(r.x, xRef, "non-CG kind");
    }
}

/**
 * The headline bitwise contract: k same-operator requests coalesce
 * into one lockstep panel and every tenant gets exactly the bits a
 * solo solve would have produced -- at every thread count.
 */
TEST(Service, CoalescedPanelMatchesDirectBitwiseAcrossThreads)
{
    const Csr m = spdMatrix(64, 205);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned k = 6;
    const OperatorConfig opCfg = clusterBackend();

    // Solo references (thread-count independence of the cluster
    // operator is pinned elsewhere; compute them once at 8 lanes).
    setGlobalThreads(8);
    std::vector<std::vector<double>> refs(k);
    std::vector<SolverResult> solo(k);
    for (unsigned c = 0; c < k; ++c)
        solo[c] =
            directSolve(m, opCfg, seededRhs(n, 8100 + c), refs[c]);

    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreads(threads);
        ServiceConfig cfg;
        cfg.scheduler.batchWindow = 8;
        cfg.scheduler.defaultTickets = 16;
        SolverService svc(cfg);

        std::vector<RequestHandle> handles;
        for (unsigned c = 0; c < k; ++c) {
            SolveRequest req;
            req.matrix = &m;
            req.op = opCfg;
            req.b = seededRhs(n, 8100 + c);
            handles.push_back(svc.submit(req));
        }
        svc.runUntilIdle();

        for (unsigned c = 0; c < k; ++c) {
            const RequestResult &r = handles[c].wait();
            EXPECT_EQ(r.status, SolveStatus::Converged)
                << "threads " << threads << " column " << c;
            EXPECT_TRUE(r.coalesced);
            EXPECT_EQ(r.batchWidth, k);
            EXPECT_EQ(r.solve.iterations, solo[c].iterations);
            EXPECT_EQ(r.solve.relResidual, solo[c].relResidual);
            expectBitwiseEqual(r.x, refs[c], "coalesced column");
        }
        const ServiceStats st = svc.stats();
        EXPECT_EQ(st.batches, 1u);
        EXPECT_EQ(st.coalescedBatches, 1u);
    }
    setGlobalThreads(8);
}

TEST(Service, WindowOneDegeneratesToSequentialBitwise)
{
    const Csr m = spdMatrix(64, 207);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned k = 4;

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 1;
    cfg.scheduler.defaultTickets = 16;
    SolverService svc(cfg);

    std::vector<RequestHandle> handles;
    for (unsigned c = 0; c < k; ++c) {
        SolveRequest req;
        req.matrix = &m;
        req.b = seededRhs(n, 8200 + c);
        handles.push_back(svc.submit(req));
    }
    svc.runUntilIdle();

    for (unsigned c = 0; c < k; ++c) {
        const RequestResult &r = handles[c].wait();
        EXPECT_FALSE(r.coalesced);
        EXPECT_EQ(r.batchWidth, 1u);
        std::vector<double> xRef;
        const SolverResult solo =
            directSolve(m, {}, seededRhs(n, 8200 + c), xRef);
        EXPECT_EQ(r.solve.iterations, solo.iterations);
        expectBitwiseEqual(r.x, xRef, "window-1 request");
    }

    // Every dispatch decision carries exactly one request.
    unsigned dispatches = 0;
    for (const Decision &d : svc.decisionLog())
        if (d.kind == DecisionKind::Dispatch) {
            ++dispatches;
            EXPECT_EQ(d.batch.size(), 1u);
        }
    EXPECT_EQ(dispatches, k);
    EXPECT_EQ(svc.stats().coalescedBatches, 0u);
}

TEST(Service, MixedOperatorsNeverCoalesce)
{
    const Csr ma = spdMatrix(64, 209);
    const Csr mb = spdMatrix(64, 211);
    const std::size_t n = static_cast<std::size_t>(ma.rows());

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 8;
    cfg.scheduler.defaultTickets = 16;
    SolverService svc(cfg);

    // Interleave two distinct prepare-cache keys in the queue.
    std::vector<RequestHandle> handles;
    std::vector<std::uint64_t> idsA, idsB;
    for (unsigned i = 0; i < 3; ++i) {
        SolveRequest ra;
        ra.matrix = &ma;
        ra.b = seededRhs(n, 8300 + i);
        handles.push_back(svc.submit(ra));
        idsA.push_back(handles.back().id());
        SolveRequest rb;
        rb.matrix = &mb;
        rb.b = seededRhs(n, 8400 + i);
        handles.push_back(svc.submit(rb));
        idsB.push_back(handles.back().id());
    }
    svc.runUntilIdle();

    // No dispatch batch mixes ids from the two key groups.
    const auto isA = [&](std::uint64_t id) {
        return std::find(idsA.begin(), idsA.end(), id) !=
               idsA.end();
    };
    for (const Decision &d : svc.decisionLog()) {
        if (d.kind != DecisionKind::Dispatch)
            continue;
        ASSERT_FALSE(d.batch.empty());
        const bool headIsA = isA(d.batch.front());
        for (std::uint64_t id : d.batch)
            EXPECT_EQ(isA(id), headIsA)
                << "batch mixed prepare-cache keys";
    }

    // Both groups coalesced internally (3 + 3 -> 2 dispatches) and
    // every answer matches its solo solve.
    EXPECT_EQ(svc.stats().batches, 2u);
    for (unsigned i = 0; i < handles.size(); ++i) {
        const RequestResult &r = handles[i].wait();
        EXPECT_EQ(r.status, SolveStatus::Converged);
        EXPECT_EQ(r.batchWidth, 3u);
        const bool a = i % 2 == 0;
        std::vector<double> xRef;
        directSolve(a ? ma : mb, {},
                    seededRhs(n, (a ? 8300 : 8400) + i / 2), xRef);
        expectBitwiseEqual(r.x, xRef, "mixed-key request");
    }
    EXPECT_EQ(svc.cacheStats().entries, 2u);
}

TEST(Service, CancelMidPanelLeavesSiblingsBitwise)
{
    const Csr m = spdMatrix(96, 213);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned k = 4;

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 8;
    cfg.scheduler.defaultTickets = 16;
    SolverService svc(cfg);

    std::vector<RequestHandle> handles;
    for (unsigned c = 0; c < k; ++c) {
        SolveRequest req;
        req.matrix = &m;
        req.b = seededRhs(n, 8500 + c);
        if (c == 2)
            req.cancelAfterChecks = 5; // fires mid-iteration
        handles.push_back(svc.submit(req));
    }
    svc.runUntilIdle();

    EXPECT_EQ(handles[2].wait().status, SolveStatus::Cancelled);
    EXPECT_TRUE(handles[2].wait().coalesced);
    for (unsigned c = 0; c < k; ++c) {
        if (c == 2)
            continue;
        const RequestResult &r = handles[c].wait();
        EXPECT_EQ(r.status, SolveStatus::Converged);
        std::vector<double> xRef;
        const SolverResult solo =
            directSolve(m, {}, seededRhs(n, 8500 + c), xRef);
        EXPECT_EQ(r.solve.iterations, solo.iterations);
        expectBitwiseEqual(r.x, xRef,
                           "sibling of cancelled request");
        EXPECT_LT(handles[2].wait().solve.iterations,
                  solo.iterations);
    }
}

// --- service: scheduling, admission, lifecycle ----------------------

TEST(Service, PriorityDispatchesFirst)
{
    const Csr ma = spdMatrix(64, 215);
    const Csr mb = spdMatrix(64, 217);
    const std::size_t n = static_cast<std::size_t>(ma.rows());

    SolverService svc;
    SolveRequest low;
    low.matrix = &ma;
    low.b = seededRhs(n, 8600);
    low.priority = 0;
    SolveRequest high;
    high.matrix = &mb;
    high.b = seededRhs(n, 8601);
    high.priority = 5;

    RequestHandle hLow = svc.submit(low);
    RequestHandle hHigh = svc.submit(high);
    svc.runUntilIdle();

    EXPECT_EQ(hLow.wait().status, SolveStatus::Converged);
    EXPECT_EQ(hHigh.wait().status, SolveStatus::Converged);

    std::vector<std::uint64_t> dispatchOrder;
    for (const Decision &d : svc.decisionLog())
        if (d.kind == DecisionKind::Dispatch)
            dispatchOrder.push_back(d.requestId);
    ASSERT_EQ(dispatchOrder.size(), 2u);
    EXPECT_EQ(dispatchOrder[0], hHigh.id());
    EXPECT_EQ(dispatchOrder[1], hLow.id());
}

TEST(Service, DeadlineExpiredMidQueueIsReaped)
{
    const Csr m = spdMatrix(64, 219);
    const std::size_t n = static_cast<std::size_t>(m.rows());

    SolverService svc;
    SolveRequest req;
    req.matrix = &m;
    req.b = seededRhs(n, 8700);
    req.deadline = std::chrono::nanoseconds(1);
    RequestHandle h = svc.submit(req);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    svc.runUntilIdle();

    const RequestResult &r = h.wait();
    EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
    EXPECT_EQ(r.solve.iterations, 0);
    EXPECT_EQ(svc.stats().deadlineExpired, 1u);

    bool sawDrop = false;
    for (const Decision &d : svc.decisionLog())
        if (d.kind == DecisionKind::Drop && d.requestId == h.id()) {
            sawDrop = true;
            EXPECT_EQ(d.reason, SolveStatus::DeadlineExceeded);
        }
    EXPECT_TRUE(sawDrop);
}

TEST(Service, CancelMidQueueReleasesTicket)
{
    const Csr m = spdMatrix(64, 221);
    const std::size_t n = static_cast<std::size_t>(m.rows());

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 1;
    SolverService svc(cfg);

    SolveRequest req;
    req.matrix = &m;
    req.b = seededRhs(n, 8800);
    RequestHandle keep = svc.submit(req);
    req.b = seededRhs(n, 8801);
    RequestHandle victim = svc.submit(req);
    victim.cancel();
    svc.runUntilIdle();

    EXPECT_EQ(keep.wait().status, SolveStatus::Converged);
    EXPECT_EQ(victim.wait().status, SolveStatus::Cancelled);
    EXPECT_EQ(victim.wait().solve.iterations, 0);
    EXPECT_EQ(svc.stats().cancelled, 1u);
    EXPECT_EQ(svc.stats().completed, 1u);
    EXPECT_EQ(svc.queueDepth(), 0u);
}

TEST(Service, OverloadRejectsWithStructuredStatus)
{
    const Csr m = spdMatrix(64, 223);
    const std::size_t n = static_cast<std::size_t>(m.rows());

    ServiceConfig cfg;
    cfg.scheduler.queueCapacity = 2;
    cfg.scheduler.defaultTickets = 16;
    SolverService svc(cfg);

    SolveRequest req;
    req.matrix = &m;
    std::vector<RequestHandle> handles;
    for (unsigned i = 0; i < 3; ++i) {
        req.b = seededRhs(n, 8900 + i);
        handles.push_back(svc.submit(req));
    }

    // Third submission bounced immediately: terminal before any
    // pump, empty iterate, structured status.
    EXPECT_EQ(handles[2].state(), RequestState::Done);
    EXPECT_EQ(handles[2].wait().status, SolveStatus::Overloaded);
    EXPECT_TRUE(handles[2].wait().x.empty());

    svc.runUntilIdle();
    EXPECT_EQ(handles[0].wait().status, SolveStatus::Converged);
    EXPECT_EQ(handles[1].wait().status, SolveStatus::Converged);
    EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(Service, TicketExhaustionCannotStarveOtherTenants)
{
    const Csr m = spdMatrix(64, 225);
    const std::size_t n = static_cast<std::size_t>(m.rows());

    ServiceConfig cfg;
    cfg.scheduler.queueCapacity = 64;
    cfg.scheduler.defaultTickets = 2;
    SolverService svc(cfg);

    // A flooding tenant burns its two tickets; the rest bounce.
    std::vector<RequestHandle> flood;
    for (unsigned i = 0; i < 6; ++i) {
        SolveRequest req;
        req.tenant = "flood";
        req.matrix = &m;
        req.b = seededRhs(n, 9000 + i);
        flood.push_back(svc.submit(req));
    }
    // The queue has plenty of room: a different tenant still gets
    // admitted and served.
    SolveRequest quiet;
    quiet.tenant = "victim";
    quiet.matrix = &m;
    quiet.b = seededRhs(n, 9100);
    RequestHandle victim = svc.submit(quiet);
    EXPECT_EQ(victim.state(), RequestState::Queued);

    unsigned rejected = 0;
    for (auto &h : flood)
        if (h.done() &&
            h.wait().status == SolveStatus::Overloaded)
            ++rejected;
    EXPECT_EQ(rejected, 4u);

    svc.runUntilIdle();
    EXPECT_EQ(victim.wait().status, SolveStatus::Converged);
    EXPECT_EQ(svc.stats().rejected, 4u);
    EXPECT_EQ(svc.stats().completed, 3u); // 2 flood + 1 victim

    // Tickets released after completion: the tenant can submit
    // again.
    SolveRequest again;
    again.tenant = "flood";
    again.matrix = &m;
    again.b = seededRhs(n, 9200);
    RequestHandle h = svc.submit(again);
    EXPECT_EQ(h.state(), RequestState::Queued);
    svc.runUntilIdle();
    EXPECT_EQ(h.wait().status, SolveStatus::Converged);
}

TEST(Service, ReplayIdenticalDecisionLog)
{
    const Csr ma = spdMatrix(64, 227);
    const Csr mb = spdMatrix(64, 229);
    const std::size_t n = static_cast<std::size_t>(ma.rows());

    const auto drive = [&](SolverService &svc) {
        for (unsigned i = 0; i < 8; ++i) {
            SolveRequest req;
            req.tenant = i % 3 == 0 ? "a" : "b";
            req.priority = static_cast<int>(i % 2);
            req.matrix = i % 2 == 0 ? &ma : &mb;
            req.b = seededRhs(n, 9300 + i);
            svc.submit(req);
            if (i == 5)
                svc.runUntilIdle(); // mid-sequence drain
        }
        svc.runUntilIdle();
    };

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 4;
    cfg.scheduler.defaultTickets = 3;
    SolverService first(cfg);
    drive(first);
    SolverService second(cfg);
    drive(second);

    const auto logA = first.decisionLog();
    const auto logB = second.decisionLog();
    ASSERT_EQ(logA.size(), logB.size());
    for (std::size_t i = 0; i < logA.size(); ++i) {
        EXPECT_EQ(logA[i].kind, logB[i].kind) << "decision " << i;
        EXPECT_EQ(logA[i].seq, logB[i].seq) << "decision " << i;
        EXPECT_EQ(logA[i].requestId, logB[i].requestId)
            << "decision " << i;
        EXPECT_EQ(logA[i].tenant, logB[i].tenant) << "decision " << i;
        EXPECT_EQ(logA[i].priority, logB[i].priority)
            << "decision " << i;
        EXPECT_EQ(logA[i].batch, logB[i].batch) << "decision " << i;
        EXPECT_EQ(logA[i].reason, logB[i].reason) << "decision " << i;
    }
}

TEST(Service, StopReapsQueuedAndRejectsNewWork)
{
    const Csr m = spdMatrix(64, 231);
    const std::size_t n = static_cast<std::size_t>(m.rows());

    SolverService svc;
    SolveRequest req;
    req.matrix = &m;
    req.b = seededRhs(n, 9400);
    RequestHandle h1 = svc.submit(req);
    req.b = seededRhs(n, 9401);
    RequestHandle h2 = svc.submit(req);

    svc.stop();
    EXPECT_EQ(h1.wait().status, SolveStatus::Cancelled);
    EXPECT_EQ(h2.wait().status, SolveStatus::Cancelled);

    req.b = seededRhs(n, 9402);
    RequestHandle h3 = svc.submit(req);
    EXPECT_EQ(h3.wait().status, SolveStatus::Overloaded);
}

TEST(Service, MalformedRequestFailsStructurally)
{
    SolverService svc;
    SolveRequest req; // no matrix
    RequestHandle h = svc.submit(req);
    EXPECT_EQ(h.wait().status, SolveStatus::Failed);
    EXPECT_FALSE(h.wait().error.empty());

    const Csr m = spdMatrix(64, 233);
    SolveRequest bad;
    bad.matrix = &m;
    bad.b.assign(3, 1.0); // wrong length
    RequestHandle h2 = svc.submit(bad);
    EXPECT_EQ(h2.wait().status, SolveStatus::Failed);
}

/**
 * File-path submission: a request naming `matrixFile` resolves
 * through loadMatrixFile (artifact fast path when a sidecar exists),
 * lands on the same cache entry an in-memory submit of the same
 * matrix uses, and returns the same bits. A missing file fails
 * structurally, like any malformed request.
 */
TEST(Service, MatrixFileRequestSharesCacheAndBits)
{
    const Csr m = spdMatrix(96, 237);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    const auto b = seededRhs(n, 9600);

    const std::string mtx = "/tmp/msc_test_service_file.mtx";
    writeMatrixMarket(m, mtx);
    writeArtifact(artifactSidecarPath(mtx), m);

    SolverService svc;
    SolveRequest inMem;
    inMem.matrix = &m;
    inMem.b = b;
    RequestHandle h1 = svc.submit(inMem);
    svc.runUntilIdle();
    ASSERT_EQ(h1.wait().status, SolveStatus::Converged);
    EXPECT_FALSE(h1.wait().cacheHit);

    SolveRequest byFile;
    byFile.matrixFile = mtx;
    byFile.b = b;
    RequestHandle h2 = svc.submit(byFile);
    svc.runUntilIdle();
    ASSERT_EQ(h2.wait().status, SolveStatus::Converged);
    // The artifact-borne key matches the in-memory one: warm hit.
    EXPECT_TRUE(h2.wait().cacheHit);
    expectBitwiseEqual(h2.wait().x, h1.wait().x, "file vs memory");

    // Sidecar gone: text parse still resolves to the same entry.
    std::remove(artifactSidecarPath(mtx).c_str());
    RequestHandle h3 = svc.submit(byFile);
    svc.runUntilIdle();
    ASSERT_EQ(h3.wait().status, SolveStatus::Converged);
    EXPECT_TRUE(h3.wait().cacheHit);
    expectBitwiseEqual(h3.wait().x, h1.wait().x, "parsed file");
    std::remove(mtx.c_str());

    SolveRequest missing;
    missing.matrixFile = "/tmp/msc_test_service_no_such_file.mtx";
    missing.b = b;
    RequestHandle h4 = svc.submit(missing);
    EXPECT_EQ(h4.wait().status, SolveStatus::Failed);
    EXPECT_FALSE(h4.wait().error.empty());
}

/**
 * The loaded-matrix LRU: a rewritten matrix file is reloaded (never
 * served stale from the pin), and many distinct tenant-supplied
 * paths stay bounded by loadedCapBytes instead of growing service
 * memory without bound.
 */
TEST(Service, MatrixFileReloadsOnRewriteAndStaysBounded)
{
    namespace fs = std::filesystem;
    const std::string mtx = "/tmp/msc_test_service_rewrite.mtx";
    const Csr a = spdMatrix(64, 241);
    const Csr b = spdMatrix(64, 251);
    const auto rhs = seededRhs(64, 9700);

    SolverService svc;
    writeMatrixMarket(a, mtx);
    SolveRequest req;
    req.matrixFile = mtx;
    req.b = rhs;
    {
        RequestHandle h = svc.submit(req);
        svc.runUntilIdle();
        ASSERT_EQ(h.wait().status, SolveStatus::Converged);
        std::vector<double> xa;
        directSolve(a, {}, rhs, xa);
        expectBitwiseEqual(h.wait().x, xa, "before rewrite");
    }
    EXPECT_EQ(svc.loadedMatrixCount(), 1u);

    // Regenerate the file; nudge the mtime explicitly so the test
    // does not depend on filesystem timestamp granularity.
    const auto oldTime = fs::last_write_time(mtx);
    writeMatrixMarket(b, mtx);
    fs::last_write_time(mtx, oldTime + std::chrono::seconds(2));
    {
        RequestHandle h = svc.submit(req);
        svc.runUntilIdle();
        ASSERT_EQ(h.wait().status, SolveStatus::Converged);
        std::vector<double> xb;
        directSolve(b, {}, rhs, xb);
        expectBitwiseEqual(h.wait().x, xb, "after rewrite");
    }
    EXPECT_EQ(svc.loadedMatrixCount(), 1u);
    std::remove(mtx.c_str());

    // Bound: with a tiny cap, each newly loaded path evicts the
    // previous (unreferenced) one instead of accumulating.
    ServiceConfig tiny;
    tiny.loadedCapBytes = 1;
    SolverService bounded(tiny);
    for (int i = 0; i < 4; ++i) {
        const std::string path =
            "/tmp/msc_test_service_lru_" + std::to_string(i) +
            ".mtx";
        writeMatrixMarket(spdMatrix(64, 261 + i), path);
        SolveRequest r;
        r.matrixFile = path;
        r.b = rhs;
        {
            RequestHandle h = bounded.submit(r);
            bounded.runUntilIdle();
            EXPECT_EQ(h.wait().status, SolveStatus::Converged);
        }
        std::remove(path.c_str());
        EXPECT_LE(bounded.loadedMatrixCount(), 2u) << "path " << i;
    }
    // The last insert sees every predecessor unreferenced: only the
    // newest entry may remain over a 1-byte cap.
    EXPECT_EQ(bounded.loadedMatrixCount(), 1u);
}

TEST(Service, AsyncWorkersDrainAndMatchDirectSolves)
{
    const Csr m = spdMatrix(64, 235);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    constexpr unsigned kReqs = 10;

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.scheduler.batchWindow = 4;
    cfg.scheduler.defaultTickets = 16;
    SolverService svc(cfg);

    std::vector<RequestHandle> handles;
    for (unsigned i = 0; i < kReqs; ++i) {
        SolveRequest req;
        req.tenant = i % 2 == 0 ? "even" : "odd";
        req.matrix = &m;
        req.b = seededRhs(n, 9500 + i);
        handles.push_back(svc.submit(req));
    }

    for (unsigned i = 0; i < kReqs; ++i) {
        const RequestResult &r = handles[i].wait();
        EXPECT_EQ(r.status, SolveStatus::Converged) << "req " << i;
        std::vector<double> xRef;
        directSolve(m, {}, seededRhs(n, 9500 + i), xRef);
        expectBitwiseEqual(r.x, xRef, "async request");
    }
    svc.stop();
    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.submitted, kReqs);
    EXPECT_EQ(st.completed, kReqs);
    EXPECT_EQ(svc.queueDepth(), 0u);
}

// --- prepare cache --------------------------------------------------

TEST(ServiceCache, SameMatrixTwoConfigsTwoEntries)
{
    const Csr m = spdMatrix(64, 301);
    PrepareCache cache;

    bool hit = true;
    auto a = cache.acquire(m, {}, &hit);
    EXPECT_FALSE(hit);
    auto b = cache.acquire(m, clusterBackend(), &hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(a.get(), b.get());
    EXPECT_FALSE(a->key() == b->key());

    auto a2 = cache.acquire(m, {}, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(a.get(), a2.get());
    auto b2 = cache.acquire(m, clusterBackend(), &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(b.get(), b2.get());

    const PrepareCache::Stats st = cache.stats();
    EXPECT_EQ(st.entries, 2u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.hits, 2u);
}

TEST(ServiceCache, KeyIgnoresThreadCountAndSeesContent)
{
    const Csr m = spdMatrix(64, 303);

    setGlobalThreads(1);
    const CacheKey k1 = operatorKey(m, {});
    setGlobalThreads(8);
    const CacheKey k8 = operatorKey(m, {});
    EXPECT_TRUE(k1 == k8);

    // Different matrix content -> different key.
    const Csr other = spdMatrix(64, 304);
    EXPECT_FALSE(operatorKey(other, {}) == k1);

    // Different placement/arithmetic config -> different key.
    OperatorConfig cl = clusterBackend();
    const CacheKey kc = operatorKey(m, cl);
    EXPECT_FALSE(kc == k1);
    cl.cluster.targetMantissaBits += 1;
    EXPECT_FALSE(operatorKey(m, cl) == kc);
}

TEST(ServiceCache, EvictionNeverFreesLiveEntries)
{
    const Csr ma = spdMatrix(64, 305);
    const Csr mb = spdMatrix(64, 306);
    const Csr mc = spdMatrix(64, 307);

    // Measure entry weight, then build a cache that fits ~1 entry.
    std::size_t oneEntry = 0;
    {
        PrepareCache probe;
        probe.acquire(ma, {}, nullptr);
        oneEntry = probe.stats().bytes;
    }
    ASSERT_GT(oneEntry, 0u);

    PrepareCache cache(oneEntry + oneEntry / 2);
    auto live = cache.acquire(ma, {}, nullptr); // held ref
    cache.acquire(mb, {}, nullptr);             // dropped ref
    cache.acquire(mc, {}, nullptr);             // dropped ref

    const PrepareCache::Stats st = cache.stats();
    EXPECT_GE(st.evictions, 1u);

    // The held entry survived every eviction pass and still works
    // (ASan guards the use-after-free half of this claim).
    bool hit = false;
    auto again = cache.acquire(ma, {}, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(live.get(), again.get());
    const std::size_t n = static_cast<std::size_t>(ma.rows());
    std::vector<double> x(n, 1.0), y(n, 0.0);
    live->op().apply(x, y);
    double sum = 0.0;
    for (double v : y)
        sum += v * v;
    EXPECT_GT(sum, 0.0);
}

TEST(ServiceCache, LruEvictsColdestUnreferencedEntry)
{
    // Same matrix, three distinct keys of identical weight: the
    // cluster arithmetic fields are part of the key even when the
    // CSR backend never reads them, so varying one forges
    // equal-sized cache entries with different identities.
    const Csr m = spdMatrix(64, 309);
    OperatorConfig ca, cb, cc;
    ca.cluster.targetMantissaBits = 21;
    cb.cluster.targetMantissaBits = 22;
    cc.cluster.targetMantissaBits = 23;

    std::size_t oneEntry = 0;
    {
        PrepareCache probe;
        probe.acquire(m, ca, nullptr);
        oneEntry = probe.stats().bytes;
    }

    PrepareCache cache(2 * oneEntry);
    cache.acquire(m, ca, nullptr);
    cache.acquire(m, cb, nullptr);
    cache.acquire(m, ca, nullptr); // refresh A: B is now coldest
    cache.acquire(m, cc, nullptr); // over cap: evicts B

    // Check A first: re-acquiring B is a miss that re-inserts it
    // and would push the cache over cap again.
    bool hit = false;
    cache.acquire(m, ca, &hit);
    EXPECT_TRUE(hit); // A survived the whole dance
    cache.acquire(m, cc, &hit);
    EXPECT_TRUE(hit); // C (just inserted) survived too
    cache.acquire(m, cb, &hit);
    EXPECT_FALSE(hit); // B was the one evicted
}

// --- chaos tier: the resilient-ladder regression and the soak -------

/**
 * Regression (this PR): the ResilientSolver escalation ladder must
 * honor a stop request even when the segment dies before the inner
 * solver's first poll. With every workspace grant failing, the
 * pre-fix ladder never polled the ExecContext at all: an armed
 * cancellation was ignored, the retry budget burned to exhaustion,
 * and the caller saw Degraded instead of Cancelled.
 */
TEST(ChaosServiceResilient, LadderHonorsCancelUnderAllocFailure)
{
    const Csr m = spdMatrix(128, 401);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0), x(n, 0.0);
    FaultyAccelOperator op(m, FaultCampaign{});

    ExecContext ctx;
    SolverConfig cfg;
    cfg.exec = &ctx;
    ResilientSolver solver(op, SolverKind::Cg, cfg);

    ChaosCampaign camp;
    camp.allocFailRate = 1.0;    // every segment dies at its first
                                 // workspace grant
    camp.cancelAfterChecks = 3;  // stop lands mid-ladder
    ChaosEngine chaos(camp);
    chaos.arm(ctx);

    const SolverResult r = solver.solve(b, x);
    EXPECT_EQ(r.status, SolveStatus::Cancelled);
    EXPECT_FALSE(r.converged);
    EXPECT_GE(r.recovery.allocFailures, 1u); // the storm did engage
    EXPECT_LT(r.recovery.retryAttempts, 10u); // budget NOT burned out
    for (double v : x)
        EXPECT_EQ(v, 0.0); // checkpoint restored, not garbage
}

TEST(ChaosServiceResilient, LadderHonorsDeadlineUnderAllocFailure)
{
    const Csr m = spdMatrix(128, 403);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0), x(n, 0.0);
    FaultyAccelOperator op(m, FaultCampaign{});

    ExecContext ctx;
    ctx.setDeadline(ExecContext::Clock::now() -
                    std::chrono::milliseconds(1));
    SolverConfig cfg;
    cfg.exec = &ctx;
    ResilientSolver solver(op, SolverKind::Cg, cfg);

    ChaosCampaign camp;
    camp.allocFailRate = 1.0;
    ChaosEngine chaos(camp);

    const SolverResult r = solver.solve(b, x);
    EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
    EXPECT_EQ(r.recovery.retryAttempts, 0u); // stopped before rung 1
}

/**
 * The soak: worker threads + chaos injection (delays, worker
 * throws, allocation failures) + deadlines + mid-flight cancels
 * across tenants and backends. Every handle must reach a terminal
 * state with a structured status and the accounting must balance --
 * under TSan this is the service's data-race certificate.
 */
TEST(ChaosServiceSoak, MultiTenantStormKeepsInvariants)
{
    const Csr ma = spdMatrix(64, 405);
    const Csr mb = spdMatrix(64, 407);
    const std::size_t n = static_cast<std::size_t>(ma.rows());
    constexpr unsigned kReqs = 120;

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.scheduler.batchWindow = 4;
    cfg.scheduler.queueCapacity = 32;
    cfg.scheduler.defaultTickets = 8;
    SolverService svc(cfg);

    ChaosCampaign camp;
    camp.seed = 99;
    camp.taskDelayRate = 0.05;
    camp.taskDelayUs = 5;
    camp.taskThrowRate = 0.02;
    camp.allocFailRate = 0.02;
    ChaosEngine chaos(camp);

    std::vector<RequestHandle> handles;
    handles.reserve(kReqs);
    for (unsigned i = 0; i < kReqs; ++i) {
        SolveRequest req;
        req.tenant = i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "c");
        req.matrix = i % 2 == 0 ? &ma : &mb;
        req.b = seededRhs(n, 9900 + i);
        req.maxIterations = 400;
        if (i % 11 == 0)
            req.deadline = std::chrono::milliseconds(2);
        handles.push_back(svc.submit(req));
        if (i % 7 == 0)
            handles.back().cancel(); // mid-flight cancel storm
    }

    std::uint64_t byStatus[8] = {};
    for (auto &h : handles) {
        const RequestResult &r = h.wait();
        switch (r.status) {
          case SolveStatus::Converged:
          case SolveStatus::MaxIterations:
            ++byStatus[0];
            // A solve that ran to completion carries an iterate of
            // the right length with finite entries.
            EXPECT_EQ(r.x.size(), n);
            break;
          case SolveStatus::Cancelled:
            ++byStatus[1];
            break;
          case SolveStatus::DeadlineExceeded:
            ++byStatus[2];
            break;
          case SolveStatus::Overloaded:
            ++byStatus[3];
            EXPECT_TRUE(r.x.empty());
            break;
          case SolveStatus::Failed:
            ++byStatus[4];
            EXPECT_FALSE(r.error.empty());
            break;
          default:
            ADD_FAILURE() << "unexpected terminal status "
                          << toString(r.status);
        }
    }
    svc.stop();

    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.submitted, kReqs);
    EXPECT_EQ(st.rejected + st.completed + st.cancelled +
                  st.deadlineExpired + st.failed,
              kReqs);
    EXPECT_EQ(st.rejected, byStatus[3]);
    EXPECT_EQ(st.failed, byStatus[4]);
    EXPECT_EQ(svc.queueDepth(), 0u);
    // The storm actually exercised the interesting paths.
    EXPECT_GT(byStatus[0], 0u);
    EXPECT_GT(byStatus[1], 0u);
    EXPECT_LE(svc.cacheStats().entries, 2u);
}

// ---------------------------------------------------------------
// Sharded dispatch, weighted fair share, EDF, preemption.
// ---------------------------------------------------------------

TEST(ServiceFairShare, SetTenantTicketsMidTrafficNeverStrands)
{
    const Csr m = spdMatrix(64, 233);
    const std::size_t n = static_cast<std::size_t>(m.rows());

    ServiceConfig cfg;
    cfg.scheduler.defaultTickets = 4;
    cfg.scheduler.batchWindow = 1;
    SolverService svc(cfg);

    // Three live requests, then the allowance drops to 1 under
    // them: nothing may be stranded or dropped.
    std::vector<RequestHandle> live;
    for (unsigned i = 0; i < 3; ++i) {
        SolveRequest req;
        req.tenant = "t";
        req.matrix = &m;
        req.b = seededRhs(n, 9500 + i);
        live.push_back(svc.submit(req));
    }
    svc.setTenantTickets("t", 1);

    // The lowered limit gates new admissions immediately...
    SolveRequest extra;
    extra.tenant = "t";
    extra.matrix = &m;
    extra.b = seededRhs(n, 9510);
    EXPECT_EQ(svc.submit(extra).wait().status,
              SolveStatus::Overloaded);

    // ...but every already-admitted request still dispatches.
    svc.runUntilIdle();
    for (auto &h : live)
        EXPECT_EQ(h.wait().status, SolveStatus::Converged);

    // Drained: the tenant is live again under the new limit, and
    // the second concurrent request bounces (limit now 1).
    extra.b = seededRhs(n, 9511);
    RequestHandle ok = svc.submit(extra);
    EXPECT_EQ(ok.state(), RequestState::Queued);
    extra.b = seededRhs(n, 9512);
    EXPECT_EQ(svc.submit(extra).wait().status,
              SolveStatus::Overloaded);
    svc.runUntilIdle();
    EXPECT_EQ(ok.wait().status, SolveStatus::Converged);

    // Raising mid-traffic opens admission right back up.
    svc.setTenantTickets("t", 3);
    std::vector<RequestHandle> more;
    for (unsigned i = 0; i < 3; ++i) {
        extra.b = seededRhs(n, 9520 + i);
        more.push_back(svc.submit(extra));
    }
    svc.runUntilIdle();
    for (auto &h : more)
        EXPECT_EQ(h.wait().status, SolveStatus::Converged);
}

TEST(ServiceFairShare, SaturatingTenantCannotStarveLightTenant)
{
    const Csr heavyM = spdMatrix(64, 235);
    const Csr lightM = spdMatrix(64, 237);
    const std::size_t n = static_cast<std::size_t>(heavyM.rows());

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 1;
    cfg.scheduler.queueCapacity = 128;
    cfg.scheduler.defaultTickets = 64;
    SolverService svc(cfg);

    // 10:1 offered load, equal weights: while both tenants stay
    // backlogged, each is entitled to half the dispatch stream.
    constexpr unsigned kLight = 5;
    constexpr unsigned kHeavy = 50;
    for (unsigned i = 0; i < kHeavy; ++i) {
        SolveRequest req;
        req.tenant = "heavy";
        req.matrix = &heavyM;
        req.b = seededRhs(n, 9600 + i);
        svc.submit(req);
    }
    std::vector<RequestHandle> light;
    for (unsigned i = 0; i < kLight; ++i) {
        SolveRequest req;
        req.tenant = "light";
        req.matrix = &lightM;
        req.b = seededRhs(n, 9700 + i);
        light.push_back(svc.submit(req));
    }
    svc.runUntilIdle();
    for (auto &h : light)
        EXPECT_EQ(h.wait().status, SolveStatus::Converged);

    // Light is backlogged for exactly the first 2*kLight
    // dispatches; its share of that window must be within 20% of
    // the weighted entitlement (50%).
    unsigned lightSeen = 0;
    unsigned window = 0;
    for (const Decision &d : svc.decisionLog()) {
        if (d.kind != DecisionKind::Dispatch)
            continue;
        if (window < 2 * kLight && d.tenant == "light")
            ++lightSeen;
        ++window;
    }
    const double share =
        double(lightSeen) / double(2 * kLight);
    EXPECT_GE(share, 0.5 * 0.8)
        << "light tenant starved: share " << share;
    EXPECT_LE(share, 0.5 * 1.2);
}

TEST(ServiceFairShare, WeightsShapeDispatchShares)
{
    const Csr ma = spdMatrix(64, 239);
    const Csr mb = spdMatrix(64, 241);
    const std::size_t n = static_cast<std::size_t>(ma.rows());

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 1;
    cfg.scheduler.queueCapacity = 128;
    cfg.scheduler.defaultTickets = 64;
    SolverService svc(cfg);
    svc.setTenantWeight("gold", 2.0);
    svc.setTenantWeight("bronze", 1.0);

    for (unsigned i = 0; i < 12; ++i) {
        SolveRequest req;
        req.tenant = i % 2 == 0 ? "gold" : "bronze";
        req.matrix = i % 2 == 0 ? &ma : &mb;
        req.b = seededRhs(n, 9800 + i);
        svc.submit(req);
    }
    svc.runUntilIdle();

    // In the first 6 dispatches (both tenants backlogged
    // throughout), gold's 2:1 weight should earn it about 2/3 of
    // the stream: exactly 4 of 6 under SFQ.
    unsigned goldSeen = 0, window = 0;
    for (const Decision &d : svc.decisionLog()) {
        if (d.kind != DecisionKind::Dispatch || window >= 6)
            continue;
        if (d.tenant == "gold")
            ++goldSeen;
        ++window;
    }
    EXPECT_EQ(goldSeen, 4u);
}

TEST(ServiceFairShare, EdfOrdersWithinPriorityBand)
{
    const Csr m = spdMatrix(64, 243);
    const std::size_t n = static_cast<std::size_t>(m.rows());

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 1;
    SolverService svc(cfg);

    // Same tenant, same band: EDF on the relative deadline
    // (none = last), regardless of submission order.
    SolveRequest relaxed;
    relaxed.matrix = &m;
    relaxed.b = seededRhs(n, 9900);
    RequestHandle hNone = svc.submit(relaxed);

    SolveRequest loose = relaxed;
    loose.b = seededRhs(n, 9901);
    loose.deadline = std::chrono::seconds(100);
    RequestHandle hLoose = svc.submit(loose);

    SolveRequest tight = relaxed;
    tight.b = seededRhs(n, 9902);
    tight.deadline = std::chrono::seconds(10);
    RequestHandle hTight = svc.submit(tight);

    // Priority still dominates deadlines.
    SolveRequest urgent = relaxed;
    urgent.b = seededRhs(n, 9903);
    urgent.priority = 1;
    RequestHandle hUrgent = svc.submit(urgent);

    svc.runUntilIdle();

    std::vector<std::uint64_t> order;
    for (const Decision &d : svc.decisionLog())
        if (d.kind == DecisionKind::Dispatch)
            order.push_back(d.requestId);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], hUrgent.id());
    EXPECT_EQ(order[1], hTight.id());
    EXPECT_EQ(order[2], hLoose.id());
    EXPECT_EQ(order[3], hNone.id());
}

TEST(ServicePreempt, PreemptResumeIsBitwiseIdentical)
{
    const Csr m = spdMatrix(96, 245);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    const std::vector<double> b = seededRhs(n, 10000);

    // Uninterrupted reference through the same service path.
    SolverService plain;
    SolveRequest req;
    req.matrix = &m;
    req.b = b;
    RequestHandle hRef = plain.submit(req);
    plain.runUntilIdle();
    const RequestResult &ref = hRef.wait();
    ASSERT_EQ(ref.status, SolveStatus::Converged);
    ASSERT_GT(ref.solve.iterations, 8);

    // Same request, forced to yield mid-recurrence: the resumed
    // solve must reproduce every bit and every kernel tally.
    SolverService svc;
    SolveRequest preemptee = req;
    preemptee.yieldAfterChecks = 5;
    RequestHandle h = svc.submit(preemptee);
    svc.runUntilIdle();

    const RequestResult &r = h.wait();
    EXPECT_EQ(r.status, SolveStatus::Converged);
    EXPECT_GE(r.preemptions, 1u);
    EXPECT_GE(svc.stats().preempted, 1u);
    EXPECT_EQ(r.solve.iterations, ref.solve.iterations);
    EXPECT_EQ(r.solve.spmvCalls, ref.solve.spmvCalls);
    EXPECT_EQ(r.solve.dotCalls, ref.solve.dotCalls);
    EXPECT_EQ(r.solve.axpyCalls, ref.solve.axpyCalls);
    EXPECT_EQ(r.solve.relResidual, ref.solve.relResidual);
    expectBitwiseEqual(r.x, ref.x, "preempted-resumed solve");

    // The decision log shows the preemption round trip: dispatch,
    // preempt, dispatch again.
    unsigned dispatches = 0, preempts = 0;
    for (const Decision &d : svc.decisionLog()) {
        if (d.requestId != h.id())
            continue;
        if (d.kind == DecisionKind::Dispatch)
            ++dispatches;
        if (d.kind == DecisionKind::Preempt) {
            ++preempts;
            EXPECT_EQ(d.reason, SolveStatus::Preempted);
        }
    }
    EXPECT_GE(dispatches, 2u);
    EXPECT_EQ(preempts, r.preemptions);
}

TEST(ServiceReplay, WeightedShardedLogReplaysByteIdentical)
{
    const Csr ma = spdMatrix(64, 247);
    const Csr mb = spdMatrix(64, 249);
    const Csr mc = spdMatrix(64, 251);
    const std::size_t n = static_cast<std::size_t>(ma.rows());

    const auto drive = [&](SolverService &svc) {
        svc.setTenantWeight("a", 2.0);
        svc.setTenantWeight("b", 0.5);
        const Csr *mats[] = {&ma, &mb, &mc};
        for (unsigned i = 0; i < 12; ++i) {
            SolveRequest req;
            req.tenant = i % 3 == 0 ? "a" : "b";
            req.priority = static_cast<int>(i % 2);
            req.matrix = mats[i % 3];
            req.b = seededRhs(n, 10100 + i);
            if (i % 4 == 1)
                req.deadline = std::chrono::seconds(20 + i);
            svc.submit(req);
            if (i == 7)
                svc.runUntilIdle(); // mid-sequence drain
        }
        svc.runUntilIdle();
    };

    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 4;
    cfg.scheduler.defaultTickets = 8;
    cfg.scheduler.shards = 2;
    SolverService first(cfg);
    drive(first);
    SolverService second(cfg);
    drive(second);

    const std::string logA = first.decisionLogText();
    const std::string logB = second.decisionLogText();
    ASSERT_FALSE(logA.empty());
    EXPECT_EQ(logA, logB); // byte-identical replay
}

TEST(ServiceShard, RoutesByKeyAndMigratesBacklog)
{
    // Find two matrices whose operator keys land on different
    // shards of 2 (content-hash routing is deterministic, so probe
    // a few seeds).
    ServiceConfig cfg;
    cfg.scheduler.batchWindow = 1;
    cfg.scheduler.shards = 2;
    AdmissionScheduler probe(cfg.scheduler);
    Csr ma = spdMatrix(64, 253);
    unsigned shardA = probe.shardOf(operatorKey(ma, {}));
    Csr mb = ma;
    unsigned shardB = shardA;
    for (std::uint64_t seed = 255; shardB == shardA; seed += 2) {
        mb = spdMatrix(64, seed);
        shardB = probe.shardOf(operatorKey(mb, {}));
    }
    const std::size_t n = static_cast<std::size_t>(ma.rows());

    SolverService svc(cfg);
    std::vector<RequestHandle> handles;
    for (unsigned i = 0; i < 3; ++i) {
        SolveRequest req;
        req.matrix = &ma;
        req.b = seededRhs(n, 10200 + i);
        handles.push_back(svc.submit(req));
    }
    // Admissions recorded shard A as the home shard.
    for (const Decision &d : svc.decisionLog())
        if (d.kind == DecisionKind::Admit)
            EXPECT_EQ(d.shard, shardA);

    // Pumping the idle shard migrates one batch from A's backlog.
    EXPECT_TRUE(svc.pumpShard(shardB));
    bool sawMigration = false;
    for (const Decision &d : svc.decisionLog())
        if (d.kind == DecisionKind::Dispatch) {
            EXPECT_EQ(d.shard, shardB);
            EXPECT_TRUE(d.migrated);
            sawMigration = true;
        }
    EXPECT_TRUE(sawMigration);
    EXPECT_EQ(svc.stats().migrated, 1u);

    svc.runUntilIdle();
    for (auto &h : handles)
        EXPECT_EQ(h.wait().status, SolveStatus::Converged);
    const ServiceStats st = svc.stats();
    ASSERT_EQ(st.shardDispatches.size(), 2u);
    EXPECT_EQ(st.shardDispatches[shardA] + st.shardDispatches[shardB],
              st.batches);
}

TEST(ServiceShard, ShardedResultsMatchUnshardedBitwise)
{
    const Csr mats[4] = {spdMatrix(64, 257), spdMatrix(64, 259),
                         spdMatrix(64, 261), spdMatrix(64, 263)};
    const std::size_t n = static_cast<std::size_t>(mats[0].rows());
    constexpr unsigned kReqs = 12;

    // Unsharded single-worker reference results, computed at 8
    // lanes (thread-count independence is pinned separately).
    setGlobalThreads(8);
    std::vector<std::vector<double>> refX(kReqs);
    std::vector<SolverResult> refSolve(kReqs);
    {
        ServiceConfig cfg;
        cfg.scheduler.batchWindow = 1;
        cfg.scheduler.defaultTickets = 16;
        SolverService svc(cfg);
        std::vector<RequestHandle> handles;
        for (unsigned i = 0; i < kReqs; ++i) {
            SolveRequest req;
            req.matrix = &mats[i % 4];
            req.b = seededRhs(n, 10300 + i);
            handles.push_back(svc.submit(req));
        }
        svc.runUntilIdle();
        for (unsigned i = 0; i < kReqs; ++i) {
            refX[i] = handles[i].wait().x;
            refSolve[i] = handles[i].wait().solve;
            ASSERT_EQ(handles[i].wait().status,
                      SolveStatus::Converged);
        }
    }

    // Sharded runs must reproduce every bit at every lane count.
    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreads(threads);
        ServiceConfig cfg;
        cfg.scheduler.batchWindow = 1;
        cfg.scheduler.defaultTickets = 16;
        cfg.scheduler.shards = 4;
        SolverService svc(cfg);
        std::vector<RequestHandle> handles;
        for (unsigned i = 0; i < kReqs; ++i) {
            SolveRequest req;
            req.matrix = &mats[i % 4];
            req.b = seededRhs(n, 10300 + i);
            handles.push_back(svc.submit(req));
        }
        svc.runUntilIdle();
        for (unsigned i = 0; i < kReqs; ++i) {
            const RequestResult &r = handles[i].wait();
            EXPECT_EQ(r.status, SolveStatus::Converged)
                << "threads " << threads << " request " << i;
            EXPECT_EQ(r.solve.iterations, refSolve[i].iterations);
            expectBitwiseEqual(r.x, refX[i], "sharded request");
        }
    }
    setGlobalThreads(8);
}

TEST(ChaosServiceShard, StopUnderLoadQuiescesAllShards)
{
    const Csr mats[3] = {spdMatrix(64, 265), spdMatrix(64, 267),
                         spdMatrix(64, 269)};
    const std::size_t n = static_cast<std::size_t>(mats[0].rows());
    constexpr unsigned kReqs = 48;

    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.scheduler.shards = 4;
    cfg.scheduler.batchWindow = 2;
    cfg.scheduler.queueCapacity = 64;
    cfg.scheduler.defaultTickets = 32;
    SolverService svc(cfg);

    std::vector<RequestHandle> handles;
    for (unsigned i = 0; i < kReqs; ++i) {
        SolveRequest req;
        req.tenant = i % 2 == 0 ? "a" : "b";
        req.matrix = &mats[i % 3];
        req.b = seededRhs(n, 10400 + i);
        if (i % 5 == 0)
            req.yieldAfterChecks = 3; // preempt mid-stop traffic
        if (i % 7 == 0)
            req.deadline = std::chrono::seconds(30);
        handles.push_back(svc.submit(req));
    }
    // Stop with shards mid-flight: every request must reach a
    // terminal state, every ticket must come back, nothing leaks.
    svc.stop();

    const ServiceStats st = svc.stats();
    EXPECT_EQ(st.submitted, kReqs);
    EXPECT_EQ(st.rejected + st.completed + st.cancelled +
                  st.deadlineExpired + st.failed,
              kReqs);
    EXPECT_EQ(svc.queueDepth(), 0u);
    for (auto &h : handles) {
        ASSERT_TRUE(h.done());
        const SolveStatus s = h.wait().status;
        EXPECT_TRUE(s == SolveStatus::Converged ||
                    s == SolveStatus::Cancelled ||
                    s == SolveStatus::Overloaded ||
                    s == SolveStatus::DeadlineExceeded)
            << toString(s);
        // A preempted-then-stopped request must never surface the
        // internal Preempted status.
        EXPECT_NE(s, SolveStatus::Preempted);
    }
    // In-flight refcounts released: with no live requests, every
    // cache entry is evictable (clear() empties the cache).
    svc.cacheStats();
    handles.clear();
}

} // namespace
} // namespace msc
