/**
 * @file
 * Parameterized property sweep: cluster bit-exactness over the full
 * configuration cross product (schedule policy x rounding mode x AN
 * protection x early termination). Every combination must produce
 * exactly round(sum_j A_ij x_j) with one rounding of the exact sum.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cluster/cluster.hh"
#include "util/random.hh"

namespace msc {
namespace {

using Param = std::tuple<SchedulePolicy, RoundingMode, bool, bool>;

class ClusterSweep : public ::testing::TestWithParam<Param>
{
};

TEST_P(ClusterSweep, BitExactAgainstOracle)
{
    const auto [policy, rounding, an, earlyTerm] = GetParam();
    ClusterConfig cfg;
    cfg.size = 16;
    cfg.schedule = policy;
    cfg.rounding = rounding;
    cfg.anProtect = an;
    cfg.earlyTermination = earlyTerm;
    Cluster cluster(cfg);

    Rng rng(1000 + static_cast<int>(policy) * 101 +
            static_cast<int>(rounding) * 11 + an * 3 + earlyTerm);
    for (int trial = 0; trial < 3; ++trial) {
        MatrixBlock b;
        b.size = 16;
        for (std::int32_t r = 0; r < 16; ++r) {
            for (std::int32_t c = 0; c < 16; ++c) {
                if (!rng.chance(0.5))
                    continue;
                const int e =
                    static_cast<int>(rng.range(-20, 20));
                b.elems.push_back(
                    {r, c,
                     std::ldexp(rng.uniform(1.0, 2.0), e) *
                         (rng.chance(0.5) ? -1.0 : 1.0)});
            }
        }
        cluster.program(b);
        std::vector<double> x(16);
        for (auto &v : x) {
            v = rng.chance(0.15)
                ? 0.0
                : std::ldexp(rng.uniform(1.0, 2.0),
                             static_cast<int>(rng.range(-15, 15))) *
                      (rng.chance(0.5) ? -1.0 : 1.0);
        }
        std::vector<double> y(16);
        cluster.multiply(x, y);

        for (std::int32_t row = 0; row < 16; ++row) {
            std::vector<double> ar, xr;
            for (const auto &el : b.elems) {
                if (el.row == row) {
                    ar.push_back(el.val);
                    xr.push_back(
                        x[static_cast<std::size_t>(el.col)]);
                }
            }
            const double expect = ar.empty()
                ? 0.0
                : exactDot(ar.data(), xr.data(), ar.size(),
                           rounding);
            EXPECT_EQ(y[static_cast<std::size_t>(row)], expect)
                << "row " << row << " trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ClusterSweep,
    ::testing::Combine(
        ::testing::Values(SchedulePolicy::Vertical,
                          SchedulePolicy::Diagonal,
                          SchedulePolicy::Hybrid),
        ::testing::Values(RoundingMode::TowardNegInf,
                          RoundingMode::TowardPosInf,
                          RoundingMode::TowardZero,
                          RoundingMode::NearestEven),
        ::testing::Bool(),  // AN protection
        ::testing::Bool()), // early termination
    [](const ::testing::TestParamInfo<Param> &info) {
        // NOTE: no structured bindings here -- commas inside [] split
        // macro arguments.
        const SchedulePolicy policy = std::get<0>(info.param);
        const RoundingMode rounding = std::get<1>(info.param);
        const bool an = std::get<2>(info.param);
        const bool et = std::get<3>(info.param);
        std::string name = toString(policy);
        switch (rounding) {
          case RoundingMode::TowardNegInf:
            name += "_NegInf";
            break;
          case RoundingMode::TowardPosInf:
            name += "_PosInf";
            break;
          case RoundingMode::TowardZero:
            name += "_Zero";
            break;
          case RoundingMode::NearestEven:
            name += "_Nearest";
            break;
        }
        name += an ? "_AN" : "_plain";
        name += et ? "_ET" : "_full";
        return name;
    });

/** Parameterized schedule-partition property over grid shapes. */
class ScheduleShapes
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(ScheduleShapes, EveryCellOncePerPolicy)
{
    const auto [bSlices, kSlices] = GetParam();
    for (auto policy : {SchedulePolicy::Vertical,
                        SchedulePolicy::Diagonal,
                        SchedulePolicy::Hybrid}) {
        const ActivationSchedule s(bSlices, kSlices, policy, 2);
        std::uint64_t cells = 0;
        for (const auto &g : s.groups())
            cells += g.activations();
        EXPECT_EQ(cells,
                  static_cast<std::uint64_t>(bSlices) * kSlices)
            << toString(policy);
        EXPECT_EQ(s.totalActivations(), cells);
    }
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, ScheduleShapes,
    ::testing::Combine(::testing::Values(1u, 5u, 54u, 127u),
                       ::testing::Values(1u, 7u, 63u, 118u)));

} // namespace
} // namespace msc
