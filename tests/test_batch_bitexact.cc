/**
 * @file
 * Bit-exactness lock for the batched multi-RHS execution path.
 *
 * The contract, at every layer: a batched call over a k-column panel
 * is bitwise identical to k invocations of the retained single-RHS
 * path in column order -- outputs, per-column side channels (peeled
 * indices), and statistics, including the floating-point energy
 * accumulations. The suites here drive Cluster::multiply(X),
 * HwCluster::multiply(X), Accelerator::spmm, the operator batch
 * applies (including an active FaultCampaign and a mid-batch
 * cancellation), and block-CG trajectory determinism across thread
 * counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "accel/accel.hh"
#include "accel/cluster_operator.hh"
#include "cluster/cluster.hh"
#include "cluster/hw_cluster.hh"
#include "fault/fault.hh"
#include "fault/faulty_operator.hh"
#include "solver/block.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/threadpool.hh"

namespace msc {
namespace {

MatrixBlock
randomBlock(Rng &rng, unsigned size, double density, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(density))
                continue;
            const int e = static_cast<int>(rng.range(0, expSpread));
            const double v = std::ldexp(rng.uniform(1.0, 2.0), e) *
                             (rng.chance(0.5) ? -1.0 : 1.0);
            b.elems.push_back({static_cast<std::int32_t>(r),
                               static_cast<std::int32_t>(c), v});
        }
    }
    return b;
}

std::vector<double>
randomVector(Rng &rng, unsigned size, int expSpread,
             double zeroProb = 0.1)
{
    std::vector<double> x(size);
    for (auto &v : x) {
        if (rng.chance(zeroProb)) {
            v = 0.0;
            continue;
        }
        const int e = static_cast<int>(rng.range(0, expSpread));
        v = std::ldexp(rng.uniform(1.0, 2.0), e) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return x;
}

/** Bitwise comparison of double buffers (0.0 vs -0.0 differ). */
bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(double)) == 0);
}

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void
expectStatsEqual(const ClusterStats &a, const ClusterStats &b)
{
    EXPECT_EQ(a.matrixSlices, b.matrixSlices);
    EXPECT_EQ(a.vectorSlices, b.vectorSlices);
    EXPECT_EQ(a.groupsTotal, b.groupsTotal);
    EXPECT_EQ(a.groupsExecuted, b.groupsExecuted);
    EXPECT_EQ(a.xbarActivations, b.xbarActivations);
    EXPECT_EQ(a.adcConversions, b.adcConversions);
    EXPECT_EQ(a.conversionsSkipped, b.conversionsSkipped);
    EXPECT_EQ(a.columnsEarlyTerminated, b.columnsEarlyTerminated);
    EXPECT_EQ(a.emptyColumns, b.emptyColumns);
    EXPECT_EQ(a.peeledVectorElements, b.peeledVectorElements);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_TRUE(sameBits(a.latency, b.latency));
    EXPECT_TRUE(sameBits(a.energy, b.energy));
    EXPECT_TRUE(sameBits(a.adcEnergy, b.adcEnergy));
    EXPECT_TRUE(sameBits(a.arrayEnergy, b.arrayEnergy));
}

/**
 * Drive one cluster config: for each k, compare the batched multiply
 * against k single-RHS calls in column order -- outputs, folded
 * stats, and peeled indices, all bitwise.
 */
void
driveClusterConfig(const ClusterConfig &cfg, std::uint64_t seed,
                   int vecSpread)
{
    Rng rng(seed);
    Cluster cluster(cfg);
    const MatrixBlock b = randomBlock(rng, cfg.size, 0.4, 20);
    cluster.program(b);

    for (unsigned k : {1u, 3u, 8u}) {
        const std::size_t n = cfg.size;
        std::vector<double> X;
        for (unsigned c = 0; c < k; ++c) {
            // Vary the exponent spread per column so columns land in
            // different vector widths (distinct schedules) and some
            // exceed the 64-bit window (peeling).
            const int spread = (c % 3 == 2) ? vecSpread + 60
                                            : vecSpread + int(c);
            const auto xc = randomVector(rng, cfg.size, spread);
            X.insert(X.end(), xc.begin(), xc.end());
        }

        // Reference: k single-RHS calls in column order.
        std::vector<double> yRef(n * k);
        std::vector<std::vector<std::int32_t>> peelRef(k);
        ClusterStats statsRef;
        for (unsigned c = 0; c < k; ++c) {
            statsRef += cluster.multiply(
                std::span<const double>(X).subspan(c * n, n),
                std::span<double>(yRef).subspan(c * n, n),
                &peelRef[c]);
        }

        std::vector<double> yBatch(n * k, -1.0);
        std::vector<std::vector<std::int32_t>> peelBatch;
        const ClusterStats statsBatch = cluster.multiply(
            std::span<const double>(X),
            std::span<double>(yBatch), k, &peelBatch);

        EXPECT_TRUE(sameBits(yRef, yBatch))
            << "k=" << k << " outputs differ";
        expectStatsEqual(statsRef, statsBatch);
        ASSERT_EQ(peelBatch.size(), k);
        for (unsigned c = 0; c < k; ++c)
            EXPECT_EQ(peelRef[c], peelBatch[c]) << "column " << c;
    }
}

TEST(BatchCluster, BitExactAcrossSchedulesAndRounding)
{
    std::uint64_t seed = 7001;
    for (auto policy : {SchedulePolicy::Vertical,
                        SchedulePolicy::Diagonal,
                        SchedulePolicy::Hybrid}) {
        for (auto mode : {RoundingMode::TowardNegInf,
                          RoundingMode::NearestEven}) {
            ClusterConfig cfg;
            cfg.size = 16;
            cfg.schedule = policy;
            cfg.rounding = mode;
            driveClusterConfig(cfg, seed++, 20);
        }
    }
}

TEST(BatchCluster, BitExactAcrossProtectionCorners)
{
    std::uint64_t seed = 7101;
    for (bool an : {false, true}) {
        for (bool et : {false, true}) {
            ClusterConfig cfg;
            cfg.size = 16;
            cfg.anProtect = an;
            cfg.earlyTermination = et;
            driveClusterConfig(cfg, seed++, 30);
        }
    }
}

TEST(BatchCluster, BitExactWithReducedPrecisionTargets)
{
    std::uint64_t seed = 7201;
    for (unsigned target : {53u, 24u, 11u}) {
        ClusterConfig cfg;
        cfg.size = 16;
        cfg.targetMantissaBits = target;
        driveClusterConfig(cfg, seed++, 25);
    }
}

TEST(BatchCluster, BitExactOnLargerBlock)
{
    ClusterConfig cfg;
    cfg.size = 64;
    driveClusterConfig(cfg, 7301, 40);
}

TEST(BatchCluster, EmptyRowsAndZeroColumns)
{
    ClusterConfig cfg;
    cfg.size = 8;
    Cluster cluster(cfg);
    MatrixBlock b;
    b.size = 8;
    b.elems = {{3, 3, 5.0}, {5, 1, -2.5}};
    cluster.program(b);

    const unsigned k = 3;
    // Column 1 is all zeros.
    std::vector<double> X(8 * k, 0.0);
    for (unsigned i = 0; i < 8; ++i) {
        X[i] = static_cast<double>(i) - 3.0;
        X[16 + i] = std::ldexp(1.0, static_cast<int>(i));
    }

    std::vector<double> yRef(8 * k);
    ClusterStats statsRef;
    for (unsigned c = 0; c < k; ++c) {
        statsRef += cluster.multiply(
            std::span<const double>(X).subspan(c * 8, 8),
            std::span<double>(yRef).subspan(c * 8, 8));
    }
    std::vector<double> yBatch(8 * k, -1.0);
    const ClusterStats statsBatch = cluster.multiply(
        std::span<const double>(X), std::span<double>(yBatch), k);
    EXPECT_TRUE(sameBits(yRef, yBatch));
    expectStatsEqual(statsRef, statsBatch);
}

TEST(BatchCluster, SingleRhsScratchReuseIsStable)
{
    // Repeated single-RHS calls on one cluster reuse member scratch;
    // results must not depend on call history.
    ClusterConfig cfg;
    cfg.size = 16;
    Cluster cluster(cfg);
    Rng rng(7401);
    cluster.program(randomBlock(rng, 16, 0.5, 25));

    const auto x1 = randomVector(rng, 16, 70); // peels
    const auto x2 = randomVector(rng, 16, 8);  // narrow
    std::vector<double> a(16), b2(16), c(16);
    cluster.multiply(x1, a);
    cluster.multiply(x2, b2); // perturb scratch sizing
    cluster.multiply(x1, c);
    EXPECT_TRUE(sameBits(a, c));
}

void
expectHwStatsEqual(const HwClusterStats &a, const HwClusterStats &b)
{
    EXPECT_EQ(a.sliceWords, b.sliceWords);
    EXPECT_EQ(a.cleanWords, b.cleanWords);
    EXPECT_EQ(a.correctedWords, b.correctedWords);
    EXPECT_EQ(a.uncorrectableWords, b.uncorrectableWords);
    EXPECT_EQ(a.cicInvertedColumns, b.cicInvertedColumns);
}

void
driveHwConfig(const HwCluster::Config &cfg, unsigned blockSize,
              std::uint64_t seed)
{
    Rng rng(seed);
    HwCluster hw(cfg);
    hw.program(randomBlock(rng, blockSize, 0.4, 16));

    for (unsigned k : {1u, 3u, 8u}) {
        std::vector<double> X;
        for (unsigned c = 0; c < k; ++c) {
            const auto xc =
                randomVector(rng, blockSize, 12 + int(c % 4));
            X.insert(X.end(), xc.begin(), xc.end());
        }
        std::vector<double> yRef(blockSize * k);
        HwClusterStats statsRef;
        for (unsigned c = 0; c < k; ++c) {
            statsRef += hw.multiply(
                std::span<const double>(X).subspan(c * blockSize,
                                                   blockSize),
                std::span<double>(yRef).subspan(c * blockSize,
                                                blockSize));
        }
        std::vector<double> yBatch(blockSize * k, -1.0);
        const HwClusterStats statsBatch = hw.multiply(
            std::span<const double>(X), std::span<double>(yBatch),
            k);
        EXPECT_TRUE(sameBits(yRef, yBatch)) << "k=" << k;
        expectHwStatsEqual(statsRef, statsBatch);
    }
}

TEST(BatchHwCluster, BitExactAcrossProtectionCorners)
{
    std::uint64_t seed = 7501;
    for (bool an : {false, true}) {
        for (bool cic : {false, true}) {
            HwCluster::Config cfg;
            cfg.size = 16;
            cfg.anProtect = an;
            cfg.cic = cic;
            driveHwConfig(cfg, 16, seed++);
        }
    }
}

TEST(BatchHwCluster, BitExactOnMultiWordColumns)
{
    // blockSize > 64: the column reduction takes the generic
    // multi-word popcount path.
    HwCluster::Config cfg;
    cfg.size = 72;
    driveHwConfig(cfg, 72, 7601);
}

TEST(BatchHwCluster, InjectorReplaysSequentialStream)
{
    // With an attached injector the batch must replay the exact
    // sequential fault stream: compare against singles driven
    // through an identically constructed injector.
    FaultCampaign camp;
    camp.seed = 99;
    camp.stuckCellRate = 0.002;
    camp.transientUpsetRate = 0.05;

    Rng dataRng(7701);
    const MatrixBlock b = randomBlock(dataRng, 16, 0.4, 10);
    const unsigned k = 3;
    std::vector<double> X;
    for (unsigned c = 0; c < k; ++c) {
        const auto xc = randomVector(dataRng, 16, 10);
        X.insert(X.end(), xc.begin(), xc.end());
    }

    HwCluster::Config cfg;
    cfg.size = 16;

    std::vector<double> yRef(16 * k), yBatch(16 * k, -1.0);
    HwClusterStats statsRef, statsBatch;
    {
        HwCluster hw(cfg);
        hw.program(b);
        FaultInjector inj(camp);
        inj.inject(hw);
        for (unsigned c = 0; c < k; ++c) {
            statsRef += hw.multiply(
                std::span<const double>(X).subspan(c * 16, 16),
                std::span<double>(yRef).subspan(c * 16, 16));
        }
    }
    {
        HwCluster hw(cfg);
        hw.program(b);
        FaultInjector inj(camp);
        inj.inject(hw);
        statsBatch = hw.multiply(std::span<const double>(X),
                                 std::span<double>(yBatch), k);
    }
    EXPECT_TRUE(sameBits(yRef, yBatch));
    expectHwStatsEqual(statsRef, statsBatch);
}

TEST(BatchHwCluster, AnalogReadsReplayDrawOrder)
{
    HwCluster::Config cfg;
    cfg.size = 16;
    cfg.analogReads = true;

    Rng dataRng(7801);
    const MatrixBlock b = randomBlock(dataRng, 16, 0.4, 8);
    const unsigned k = 3;
    std::vector<double> X;
    for (unsigned c = 0; c < k; ++c) {
        const auto xc = randomVector(dataRng, 16, 8);
        X.insert(X.end(), xc.begin(), xc.end());
    }

    HwCluster hw(cfg);
    hw.program(b);
    std::vector<double> yRef(16 * k), yBatch(16 * k, -1.0);
    Rng noiseA(4242), noiseB(4242);
    for (unsigned c = 0; c < k; ++c) {
        hw.multiply(
            std::span<const double>(X).subspan(c * 16, 16),
            std::span<double>(yRef).subspan(c * 16, 16), &noiseA);
    }
    hw.multiply(std::span<const double>(X),
                std::span<double>(yBatch), k, &noiseB);
    EXPECT_TRUE(sameBits(yRef, yBatch));
}

Csr
bandedMatrix(std::int32_t rows, std::uint64_t seed)
{
    TiledParams p;
    p.rows = rows;
    p.tile = 48;
    p.tileDensity = 0.3;
    p.scatterPerRow = 0.5;
    p.seed = seed;
    p.symmetricPattern = true;
    p.spd = true;
    return genTiled(p);
}

std::vector<double>
panelOf(Rng &rng, std::size_t n, unsigned k)
{
    std::vector<double> X(n * k);
    for (auto &v : X)
        v = rng.uniform(-1.0, 1.0);
    return X;
}

TEST(BatchAccel, SpmmBitExactToRepeatedSpmv)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    const std::size_t n = 2048;
    const Csr m = bandedMatrix(static_cast<std::int32_t>(n), 8101);
    accel.prepare(m);
    Rng rng(8102);
    for (unsigned k : {1u, 3u, 8u}) {
        const auto X = panelOf(rng, n, k);
        std::vector<double> yRef(n * k), yBatch(n * k, -1.0);
        for (unsigned c = 0; c < k; ++c) {
            accel.spmv(
                std::span<const double>(X).subspan(c * n, n),
                std::span<double>(yRef).subspan(c * n, n));
        }
        accel.spmm(std::span<const double>(X),
                   std::span<double>(yBatch), k);
        EXPECT_TRUE(sameBits(yRef, yBatch)) << "k=" << k;
    }
}

TEST(BatchAccel, SpmmDeterministicAcrossThreadCounts)
{
    msc::setLogQuiet(true);
    Accelerator accel;
    const std::size_t n = 2048;
    const Csr m = bandedMatrix(static_cast<std::int32_t>(n), 8201);
    accel.prepare(m);
    Rng rng(8202);
    const unsigned k = 5;
    const auto X = panelOf(rng, n, k);

    std::vector<double> y1(n * k), y2(n * k), y8(n * k);
    setGlobalThreads(1);
    accel.spmm(std::span<const double>(X), std::span<double>(y1), k);
    setGlobalThreads(2);
    accel.spmm(std::span<const double>(X), std::span<double>(y2), k);
    setGlobalThreads(8);
    accel.spmm(std::span<const double>(X), std::span<double>(y8), k);
    setGlobalThreads(0);
    EXPECT_TRUE(sameBits(y1, y2));
    EXPECT_TRUE(sameBits(y1, y8));
}

TEST(BatchOperator, ClusterOperatorBatchMatchesApplies)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(96, 8301);
    const auto n = static_cast<std::size_t>(m.rows());
    const unsigned k = 3;
    Rng rng(8302);
    const auto X = panelOf(rng, n, k);

    ClusterArithmeticOperator ref(m), bat(m);
    std::vector<double> yRef(n * k, 0.0), yBatch(n * k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        ref.apply(std::span<const double>(X).subspan(c * n, n),
                  std::span<double>(yRef).subspan(c * n, n));
    }
    bat.applyBatch(std::span<const double>(X),
                   std::span<double>(yBatch), k);
    EXPECT_TRUE(sameBits(yRef, yBatch));
    // The running aggregate -- floating-point energy/latency sums
    // included -- folds in the same (column, block) order.
    expectStatsEqual(ref.totals(), bat.totals());
}

TEST(BatchOperator, FaultyOperatorBatchReplaysStreams)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(192, 8401);
    const auto n = static_cast<std::size_t>(m.rows());
    FaultCampaign camp;
    camp.seed = 77;
    camp.stuckCellRate = 0.02;
    camp.transientUpsetRate = 0.2;
    camp.saturationRate = 0.2;
    camp.stuckColumnRate = 0.1;
    camp.driftPerRead = 1e-6;

    const unsigned k = 4;
    Rng rng(8402);
    const auto X = panelOf(rng, n, k);

    FaultyAccelOperator ref(m, camp), bat(m, camp);
    // Warm both apply-sequence counters so the batch starts
    // mid-stream (seq and per-block read counts nonzero).
    std::vector<double> warm(n, 0.0);
    ref.apply(std::span<const double>(X).first(n), warm);
    bat.apply(std::span<const double>(X).first(n), warm);

    std::vector<double> yRef(n * k, 0.0), yBatch(n * k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        ref.apply(std::span<const double>(X).subspan(c * n, n),
                  std::span<double>(yRef).subspan(c * n, n));
    }
    bat.applyBatch(std::span<const double>(X),
                   std::span<double>(yBatch), k);

    // Bitwise, including any saturated (non-finite) conversions.
    EXPECT_TRUE(sameBits(yRef, yBatch));
    EXPECT_EQ(ref.runtimeStats().transientUpsets,
              bat.runtimeStats().transientUpsets);
    EXPECT_EQ(ref.runtimeStats().saturatedConversions,
              bat.runtimeStats().saturatedConversions);
    ASSERT_EQ(ref.blockCount(), bat.blockCount());
    for (std::size_t b = 0; b < ref.blockCount(); ++b)
        EXPECT_EQ(ref.blockReads(b), bat.blockReads(b))
            << "block " << b;
}

TEST(BatchOperator, MidBatchCancellationLeavesOperatorReusable)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(96, 8501);
    const auto n = static_cast<std::size_t>(m.rows());
    const unsigned k = 3;
    Rng rng(8502);
    const auto X = panelOf(rng, n, k);

    ClusterArithmeticOperator ref(m), op(m);
    std::vector<double> yRef(n * k, 0.0), y(n * k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        ref.apply(std::span<const double>(X).subspan(c * n, n),
                  std::span<double>(yRef).subspan(c * n, n));
    }

    ExecContext ctx;
    ctx.token().cancel();
    op.setExecContext(&ctx);
    EXPECT_THROW(op.applyBatch(std::span<const double>(X),
                               std::span<double>(y), k),
                 CancelledError);
    // The abandoned batch never ran its reduction: no partial stats.
    expectStatsEqual(op.totals(), ClusterStats{});

    op.setExecContext(nullptr);
    y.assign(n * k, 0.0);
    op.applyBatch(std::span<const double>(X), std::span<double>(y),
                  k);
    EXPECT_TRUE(sameBits(yRef, y));
    expectStatsEqual(ref.totals(), op.totals());
}

/** Accelerator-backed panel operator: apply -> spmv, applyBatch ->
 *  spmm (proven bitwise identical per column above). */
class AccelPanelOperator : public LinearOperator
{
  public:
    explicit AccelPanelOperator(const Csr &m) : mat(&m)
    {
        accel.prepare(m);
    }

    std::int32_t rows() const override { return mat->rows(); }
    std::int32_t cols() const override { return mat->cols(); }

    void
    apply(std::span<const double> x, std::span<double> y) override
    {
        accel.spmv(x, y);
    }

    void
    applyBatch(std::span<const double> X, std::span<double> Y,
               unsigned k) override
    {
        accel.spmm(X, Y, k);
    }

  private:
    Accelerator accel;
    const Csr *mat;
};

TEST(BlockCg, SolvesSpdPanel)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(480, 8601);
    const auto n = static_cast<std::size_t>(m.rows());
    CsrOperator a(m);
    const unsigned k = 4;
    Rng rng(8602);
    const auto B = panelOf(rng, n, k);
    std::vector<double> X(n * k, 0.0);

    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    cfg.maxIterations = 2000;
    const BlockSolverResult res =
        blockConjugateGradient(a, B, X, k, cfg);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.status, SolveStatus::Converged);
    EXPECT_EQ(res.columns, k);
    EXPECT_GT(res.spmmCalls, 0u);

    // True residuals, recomputed from scratch.
    std::vector<double> r(n);
    for (unsigned c = 0; c < k; ++c) {
        m.spmv(std::span<const double>(X).subspan(c * n, n), r);
        double num = 0.0, den = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = B[c * n + i] - r[i];
            num += d * d;
            den += B[c * n + i] * B[c * n + i];
        }
        EXPECT_LE(std::sqrt(num / den), 1e-8) << "column " << c;
    }
}

TEST(BlockCg, DeflatesZeroColumns)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(192, 8701);
    const auto n = static_cast<std::size_t>(m.rows());
    CsrOperator a(m);
    const unsigned k = 3;
    Rng rng(8702);
    auto B = panelOf(rng, n, k);
    // Middle column: zero RHS. Undeflated it would make every R'R
    // singular on the spot.
    std::fill(B.begin() + n, B.begin() + 2 * n, 0.0);
    std::vector<double> X(n * k, 1.0);

    const BlockSolverResult res =
        blockConjugateGradient(a, B, X, k);
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(sameBits(res.relResiduals[1], 0.0));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_TRUE(sameBits(X[n + i], 0.0)) << "row " << i;
}

TEST(BlockCg, TrajectoryDeterministicAcrossThreadCounts)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(960, 8801);
    const auto n = static_cast<std::size_t>(m.rows());
    AccelPanelOperator a(m);
    const unsigned k = 3;
    Rng rng(8802);
    const auto B = panelOf(rng, n, k);

    SolverConfig cfg;
    cfg.tolerance = 1e-12;
    cfg.maxIterations = 40; // fixed budget: compare trajectories

    std::vector<std::vector<double>> xs;
    std::vector<BlockSolverResult> rs;
    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreads(static_cast<int>(threads));
        std::vector<double> X(n * k, 0.0);
        rs.push_back(blockConjugateGradient(a, B, X, k, cfg));
        xs.push_back(std::move(X));
    }
    setGlobalThreads(0);
    for (std::size_t i = 1; i < xs.size(); ++i) {
        EXPECT_TRUE(sameBits(xs[0], xs[i])) << "lane config " << i;
        EXPECT_EQ(rs[0].iterations, rs[i].iterations);
        EXPECT_TRUE(
            sameBits(rs[0].relResiduals, rs[i].relResiduals));
    }
}

TEST(BlockCg, CancellationReturnsLastCompletedIterate)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(480, 8901);
    const auto n = static_cast<std::size_t>(m.rows());
    CsrOperator a(m);
    const unsigned k = 3;
    Rng rng(8902);
    const auto B = panelOf(rng, n, k);

    // Reference: exactly 5 block iterations.
    SolverConfig five;
    five.tolerance = 1e-30;
    five.maxIterations = 5;
    std::vector<double> x5(n * k, 0.0);
    blockConjugateGradient(a, B, x5, k, five);

    // Cancelled run: polls land at entry (1) then at each iteration
    // top (one per iteration); the 7th poll is iteration 5's, which
    // aborts before that iteration moves X.
    ExecContext ctx;
    ctx.cancelAfterChecks(7);
    SolverConfig cfg;
    cfg.tolerance = 1e-30;
    cfg.maxIterations = 2000;
    cfg.exec = &ctx;
    std::vector<double> xc(n * k, 0.0);
    const BlockSolverResult res =
        blockConjugateGradient(a, B, xc, k, cfg);
    EXPECT_EQ(res.status, SolveStatus::Cancelled);
    EXPECT_FALSE(res.converged);
    EXPECT_TRUE(sameBits(x5, xc));
}

TEST(BatchSolver, ResilientSolveBatchMatchesSequentialSolves)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(192, 9001);
    const auto n = static_cast<std::size_t>(m.rows());
    FaultCampaign camp;
    camp.seed = 5;
    camp.stuckCellRate = 0.01;
    camp.transientUpsetRate = 0.01;
    const unsigned k = 3;
    Rng rng(9002);
    const auto B = panelOf(rng, n, k);

    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 400;

    FaultyAccelOperator opRef(m, camp);
    ResilientSolver ref(opRef, SolverKind::Cg, cfg);
    std::vector<double> xRef(n * k, 0.0);
    std::vector<SolverResult> seq;
    for (unsigned c = 0; c < k; ++c) {
        seq.push_back(ref.solve(
            std::span<const double>(B).subspan(c * n, n),
            std::span<double>(xRef).subspan(c * n, n)));
    }

    FaultyAccelOperator opBat(m, camp);
    ResilientSolver bat(opBat, SolverKind::Cg, cfg);
    std::vector<double> xBat(n * k, 0.0);
    const std::vector<SolverResult> batRes =
        bat.solveBatch(std::span<const double>(B),
                       std::span<double>(xBat), k);

    ASSERT_EQ(batRes.size(), k);
    EXPECT_TRUE(sameBits(xRef, xBat));
    for (unsigned c = 0; c < k; ++c) {
        EXPECT_EQ(seq[c].status, batRes[c].status) << "col " << c;
        EXPECT_EQ(seq[c].iterations, batRes[c].iterations);
        EXPECT_TRUE(
            sameBits(seq[c].relResidual, batRes[c].relResidual));
    }
}

TEST(BatchSolver, ResilientSolveBatchStopsAtColumnBoundary)
{
    setLogQuiet(true);
    const Csr m = bandedMatrix(96, 9101);
    const auto n = static_cast<std::size_t>(m.rows());
    const unsigned k = 3;
    Rng rng(9102);
    const auto B = panelOf(rng, n, k);

    ExecContext ctx;
    ctx.token().cancel();
    SolverConfig cfg;
    cfg.exec = &ctx;
    FaultyAccelOperator op(m, FaultCampaign{});
    ResilientSolver solver(op, SolverKind::Cg, cfg);
    std::vector<double> X(n * k, 0.0);
    const std::vector<SolverResult> res =
        solver.solveBatch(std::span<const double>(B),
                          std::span<double>(X), k);
    ASSERT_EQ(res.size(), k);
    for (unsigned c = 0; c < k; ++c) {
        EXPECT_EQ(res[c].status, SolveStatus::Cancelled)
            << "col " << c;
        EXPECT_FALSE(res[c].converged);
    }
    // The stamped columns were never touched.
    EXPECT_TRUE(sameBits(X, std::vector<double>(n * k, 0.0)));
}

} // namespace
} // namespace msc
