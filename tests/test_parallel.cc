/**
 * @file
 * Tests for the parallel execution engine (util/threadpool.hh) and
 * its determinism contract: every result produced through the thread
 * pool -- cluster-operator applies, accelerator SpMV, hardware
 * cluster scans, full fault-campaign solves -- must be bit-identical
 * for 1, 2, and 8 worker lanes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "accel/accel.hh"
#include "accel/cluster_operator.hh"
#include "cluster/hw_cluster.hh"
#include "fault/faulty_operator.hh"
#include "solver/resilient.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace msc {
namespace {

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

/** Run @p body once per lane count and return the collected
 *  results; restores an 8-lane pool afterwards so the suite keeps
 *  exercising the parallel paths. */
template <typename Body>
auto
perThreadCount(Body &&body)
{
    std::vector<decltype(body())> results;
    for (unsigned lanes : {1u, 2u, 8u}) {
        setGlobalThreads(lanes);
        results.push_back(body());
    }
    return results;
}

TEST(ThreadPool, ForRangeCoversEveryIndexExactlyOnce)
{
    setGlobalThreads(8);
    constexpr std::size_t n = 10007;
    std::vector<int> hits(n, 0);
    parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;

    // Larger grains cover the same space.
    std::fill(hits.begin(), hits.end(), 0);
    parallelFor(n, [&](std::size_t i) { ++hits[i]; }, 64);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, SetGlobalThreadsControlsLaneCount)
{
    setGlobalThreads(3);
    EXPECT_EQ(globalThreads(), 3u);
    setGlobalThreads(1);
    EXPECT_EQ(globalThreads(), 1u);
    setGlobalThreads(8);
    EXPECT_EQ(globalThreads(), 8u);
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives)
{
    setGlobalThreads(4);
    EXPECT_THROW(
        parallelFor(1000,
                    [&](std::size_t i) {
                        if (i == 437)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);

    // The pool is intact: the next loop completes normally.
    std::atomic<int> done{0};
    parallelFor(1000, [&](std::size_t) {
        done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPool, ExceptionsPropagateAtEveryLaneCount)
{
    // The inline (1-lane) and pooled paths rethrow through different
    // machinery; a throwing body must surface on the caller at each,
    // and the pool must stay usable afterwards.
    for (unsigned lanes : {1u, 2u, 8u}) {
        setGlobalThreads(lanes);
        EXPECT_THROW(
            parallelFor(1000,
                        [&](std::size_t i) {
                            if (i == 437)
                                throw std::runtime_error("boom");
                        }),
            std::runtime_error)
            << "lanes " << lanes;
        std::atomic<int> done{0};
        parallelFor(1000, [&](std::size_t) {
            done.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(done.load(), 1000) << "lanes " << lanes;
    }
    setGlobalThreads(8);
}

TEST(ThreadPool, ReduceRethrowsBodyExceptions)
{
    for (unsigned lanes : {1u, 2u, 8u}) {
        setGlobalThreads(lanes);
        EXPECT_THROW(parallelReduce(
                         512, 0.0,
                         [](std::size_t i) -> double {
                             if (i == 260)
                                 throw std::runtime_error("reduce boom");
                             return 1.0;
                         },
                         [](double a, double b) { return a + b; }, 16),
                     std::runtime_error)
            << "lanes " << lanes;
        // Pool intact: same reduction without the throw still works.
        const double sum = parallelReduce(
            512, 0.0, [](std::size_t) { return 1.0; },
            [](double a, double b) { return a + b; }, 16);
        EXPECT_EQ(sum, 512.0) << "lanes " << lanes;
    }
    setGlobalThreads(8);
}

TEST(ThreadPool, NestedParallelSectionsRunInline)
{
    setGlobalThreads(4);
    std::vector<int> outerHits(8, 0);
    std::atomic<int> innerTotal{0};
    std::atomic<bool> sawSection{false};
    parallelFor(outerHits.size(), [&](std::size_t i) {
        ++outerHits[i];
        if (ThreadPool::inParallelSection())
            sawSection.store(true, std::memory_order_relaxed);
        // Nested loop must run inline without deadlocking.
        parallelFor(100, [&](std::size_t) {
            innerTotal.fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (int h : outerHits)
        EXPECT_EQ(h, 1);
    EXPECT_EQ(innerTotal.load(), 800);
    EXPECT_TRUE(sawSection.load());
    EXPECT_FALSE(ThreadPool::inParallelSection());
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossThreadCounts)
{
    // Values with wildly mixed magnitudes: any reordering of the
    // additions would change the rounded sum.
    constexpr std::size_t n = 4096;
    std::vector<double> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
        vals[i] = std::ldexp(1.0 + static_cast<double>(i % 97) / 97.0,
                             static_cast<int>(i % 61) - 30);
    }
    const auto sums = perThreadCount([&] {
        return parallelReduce(
            n, 0.0, [&](std::size_t i) { return vals[i]; },
            [](double a, double b) { return a + b; }, 32);
    });
    EXPECT_EQ(sums[0], sums[1]);
    EXPECT_EQ(sums[0], sums[2]);
}

TEST(ParallelDeterminism, ClusterOperatorApply)
{
    const Csr m = spdMatrix(192, 21);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::sin(static_cast<double>(i) + 1.0);

    struct Out
    {
        std::vector<double> y;
        ClusterStats stats;
    };
    const auto runs = perThreadCount([&] {
        ClusterArithmeticOperator op(m);
        Out out;
        out.y.assign(n, 0.0);
        // Two applies exercise the per-block scratch reuse.
        op.apply(x, out.y);
        op.apply(x, out.y);
        out.stats = op.totals();
        return out;
    });
    for (std::size_t r : {std::size_t{1}, std::size_t{2}}) {
        EXPECT_EQ(runs[0].y, runs[r].y);
        EXPECT_EQ(runs[0].stats.groupsExecuted,
                  runs[r].stats.groupsExecuted);
        EXPECT_EQ(runs[0].stats.adcConversions,
                  runs[r].stats.adcConversions);
        EXPECT_EQ(runs[0].stats.columnsEarlyTerminated,
                  runs[r].stats.columnsEarlyTerminated);
        EXPECT_EQ(runs[0].stats.peeledVectorElements,
                  runs[r].stats.peeledVectorElements);
        EXPECT_EQ(runs[0].stats.cycles, runs[r].stats.cycles);
        EXPECT_EQ(runs[0].stats.energy, runs[r].stats.energy);
    }
}

TEST(ParallelDeterminism, AcceleratorSpmv)
{
    const Csr m = spdMatrix(512, 33);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::cos(static_cast<double>(i) * 0.7);

    const auto runs = perThreadCount([&] {
        Accelerator accel;
        accel.prepare(m);
        std::vector<double> y(n, 0.0);
        accel.spmv(x, y);
        return y;
    });
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelDeterminism, HwClusterAnalogMultiply)
{
    constexpr unsigned size = 16;
    Rng gen(101);
    HwCluster::Config cfg;
    cfg.size = size;
    cfg.analogReads = true;
    cfg.cell.progErrorSigma = 0.05; // real noise, not ideal cells

    MatrixBlock blk;
    blk.size = size;
    for (std::int32_t r = 0; r < static_cast<std::int32_t>(size);
         ++r) {
        for (std::int32_t c = 0; c < static_cast<std::int32_t>(size);
             ++c) {
            if (gen.chance(0.4))
                blk.elems.push_back({r, c, gen.uniform(-2.0, 2.0)});
        }
    }
    std::vector<double> x(size);
    for (auto &v : x)
        v = gen.uniform(-1.0, 1.0);

    struct Out
    {
        std::vector<double> y;
        HwClusterStats stats;
    };
    const auto runs = perThreadCount([&] {
        HwCluster hw(cfg);
        hw.program(blk);
        Out out;
        out.y.assign(size, 0.0);
        Rng noise(7); // same caller stream every run
        out.stats = hw.multiply(x, out.y, &noise);
        return out;
    });
    EXPECT_EQ(runs[0].y, runs[1].y);
    EXPECT_EQ(runs[0].y, runs[2].y);
    EXPECT_EQ(runs[0].stats.sliceWords, runs[2].stats.sliceWords);
    EXPECT_EQ(runs[0].stats.cleanWords, runs[2].stats.cleanWords);
    EXPECT_EQ(runs[0].stats.correctedWords,
              runs[2].stats.correctedWords);
    EXPECT_EQ(runs[0].stats.uncorrectableWords,
              runs[2].stats.uncorrectableWords);
}

TEST(ParallelDeterminism, FaultyOperatorApplySequence)
{
    const Csr m = spdMatrix(192, 13);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    FaultCampaign camp;
    camp.seed = 29;
    camp.stuckCellRate = 0.01;
    camp.transientUpsetRate = 0.05;
    camp.driftPerRead = 1e-6;

    std::vector<double> x(n, 1.0);
    struct Out
    {
        std::vector<double> y;
        FaultStats runtime;
    };
    const auto runs = perThreadCount([&] {
        FaultyAccelOperator op(m, camp);
        Out out;
        out.y.assign(n, 0.0);
        // Several applies: the per-(apply, block) transient streams
        // must line up run to run.
        for (int pass = 0; pass < 5; ++pass) {
            std::fill(out.y.begin(), out.y.end(), 0.0);
            op.apply(x, out.y);
        }
        out.runtime = op.runtimeStats();
        return out;
    });
    EXPECT_EQ(runs[0].y, runs[1].y);
    EXPECT_EQ(runs[0].y, runs[2].y);
    EXPECT_EQ(runs[0].runtime.transientUpsets,
              runs[2].runtime.transientUpsets);
    EXPECT_EQ(runs[0].runtime.saturatedConversions,
              runs[2].runtime.saturatedConversions);
}

TEST(ParallelDeterminism, ResilientSolveUnderActiveCampaign)
{
    const Csr m = spdMatrix(256, 17);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    FaultCampaign camp;
    camp.seed = 41;
    camp.stuckCellRate = 0.005;
    camp.transientUpsetRate = 0.02;
    camp.saturationRate = 0.2;
    camp.deadCrossbarRate = 0.05;

    std::vector<double> b(n, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 800;

    struct Out
    {
        std::vector<double> x;
        SolverResult run;
    };
    const auto runs = perThreadCount([&] {
        FaultyAccelOperator op(m, camp);
        ResilientSolver solver(op, SolverKind::Cg, cfg);
        Out out;
        out.x.assign(n, 0.0);
        out.run = solver.solve(b, out.x);
        return out;
    });

    // The whole trajectory -- iterate, residual, iteration count,
    // and every recovery counter -- is thread-count invariant.
    for (std::size_t r : {std::size_t{1}, std::size_t{2}}) {
        EXPECT_EQ(runs[0].x, runs[r].x);
        EXPECT_EQ(runs[0].run.iterations, runs[r].run.iterations);
        EXPECT_EQ(runs[0].run.relResidual, runs[r].run.relResidual);
        EXPECT_EQ(runs[0].run.converged, runs[r].run.converged);
        const RecoveryStats &a = runs[0].run.recovery;
        const RecoveryStats &c = runs[r].run.recovery;
        EXPECT_EQ(a.nanEvents, c.nanEvents);
        EXPECT_EQ(a.divergenceEvents, c.divergenceEvents);
        EXPECT_EQ(a.stagnationEvents, c.stagnationEvents);
        EXPECT_EQ(a.scrubs, c.scrubs);
        EXPECT_EQ(a.reprograms, c.reprograms);
        EXPECT_EQ(a.reprogramFailures, c.reprogramFailures);
        EXPECT_EQ(a.checkpointRestarts, c.checkpointRestarts);
        EXPECT_EQ(a.fallbacks, c.fallbacks);
        EXPECT_EQ(a.segments, c.segments);
        EXPECT_EQ(a.degradedBlocks, c.degradedBlocks);
    }
}

TEST(ParallelDeterminism, SolverWorkspaceDoesNotChangeResults)
{
    setGlobalThreads(8);
    const Csr m = spdMatrix(256, 53);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    CsrOperator op(m);
    std::vector<double> b(n, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-10;

    for (int kind = 0; kind < 3; ++kind) {
        std::vector<double> xPlain(n, 0.0), xWs(n, 0.0);
        SolverWorkspace ws;
        SolverResult plain, withWs;
        switch (kind) {
          case 0:
            plain = conjugateGradient(op, b, xPlain, cfg);
            withWs = conjugateGradient(op, b, xWs, cfg, &ws);
            // Reuse once more: the recycled capacity must not leak
            // state between solves.
            std::fill(xWs.begin(), xWs.end(), 0.0);
            withWs = conjugateGradient(op, b, xWs, cfg, &ws);
            break;
          case 1:
            plain = biCgStab(op, b, xPlain, cfg);
            withWs = biCgStab(op, b, xWs, cfg, &ws);
            std::fill(xWs.begin(), xWs.end(), 0.0);
            withWs = biCgStab(op, b, xWs, cfg, &ws);
            break;
          default:
            plain = gmres(op, b, xPlain, cfg, 30);
            withWs = gmres(op, b, xWs, cfg, 30, &ws);
            std::fill(xWs.begin(), xWs.end(), 0.0);
            withWs = gmres(op, b, xWs, cfg, 30, &ws);
            break;
        }
        EXPECT_EQ(xPlain, xWs) << "kind " << kind;
        EXPECT_EQ(plain.iterations, withWs.iterations)
            << "kind " << kind;
        EXPECT_EQ(plain.relResidual, withWs.relResidual)
            << "kind " << kind;
    }
}

} // namespace
} // namespace msc
