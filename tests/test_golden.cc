/**
 * @file
 * Golden-trace regression tests: a fig8-style experiment on a tiny
 * generated matrix must reproduce the checked-in reference output
 * byte for byte -- solver trajectory (residuals in hexfloat, an
 * FNV-1a hash of the solution vector) and the deterministic
 * telemetry counters -- at 1 and at 4 worker threads.
 *
 * Regenerating the goldens (after an intentional numerical change):
 *
 *     MSC_REGEN_GOLDEN=1 build/tests/msc_tests \
 *         --gtest_filter='Golden.*'
 *
 * then review the diff under tests/golden/ and commit it. The
 * goldens encode the bit-determinism contract (DESIGN.md section
 * 2d/2e): any lane-count dependence or unintended rounding change
 * shows up as a byte diff here.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/faulty_operator.hh"
#include "solver/resilient.hh"
#include "solver/solver.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

#ifndef MSC_GOLDEN_DIR
#error "MSC_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace msc;

/** FNV-1a over the raw bytes of a double vector: a compact,
 *  byte-exact fingerprint of a solver trajectory's end state. */
std::uint64_t
fnv1a(std::span<const double> v)
{
    std::uint64_t h = 1469598103934665603ull;
    for (double d : v) {
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            h ^= (bits >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** The fig8-style miniature: same generator family as the paper's
 *  convergence study, shrunk until a full resilient solve takes
 *  milliseconds. */
Csr
goldenMatrix()
{
    TiledParams gen;
    gen.rows = 96;
    gen.tile = 16;
    gen.tileDensity = 0.3;
    gen.spd = true;
    gen.symmetricPattern = true;
    gen.diagDominance = 0.05;
    gen.seed = 7;
    return genTiled(gen);
}

/** Deterministic counters only: pool.* tallies depend on
 *  scheduling and stay out of the goldens. */
void
appendCounters(std::ostringstream &out)
{
    for (const auto &[name, value] : telemetry::snapshotCounters()) {
        if (name.rfind("pool.", 0) == 0)
            continue;
        if (value == 0)
            continue;
        out << "counter " << name << " " << value << "\n";
    }
}

/** Clean CG on the exact CSR operator: residual trajectory at
 *  doubling iteration caps, then the converged end state. */
std::string
cleanCgTrace()
{
    const Csr m = goldenMatrix();
    const std::vector<double> b(
        static_cast<std::size_t>(m.rows()), 1.0);

    std::ostringstream out;
    out << "golden clean_cg v1\n";
    out << "matrix tiled rows=" << m.rows() << " nnz=" << m.nnz()
        << "\n";

    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    for (int cap : {1, 2, 4, 8, 16, 32}) {
        CsrOperator op(m);
        std::vector<double> x(b.size(), 0.0);
        SolverConfig capped = cfg;
        capped.maxIterations = cap;
        const SolverResult r = conjugateGradient(op, b, x, capped);
        out << "residual iter=" << cap << " "
            << hexDouble(r.relResidual) << "\n";
    }

    telemetry::reset();
    CsrOperator op(m);
    std::vector<double> x(b.size(), 0.0);
    SolverConfig full = cfg;
    full.maxIterations = 400;
    const SolverResult r = conjugateGradient(op, b, x, full);
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(fnv1a(x)));
    out << "iterations " << r.iterations << "\n";
    out << "converged " << (r.converged ? 1 : 0) << "\n";
    out << "rel_residual " << hexDouble(r.relResidual) << "\n";
    out << "x_hash " << hash << "\n";
    out << "residual_gauge "
        << hexDouble(telemetry::gaugeValue("solver.residual"))
        << "\n";
    appendCounters(out);
    return out.str();
}

/** Resilient CG under a seeded fault campaign: the self-healing
 *  ladder's counters are part of the trace. */
std::string
resilientTrace()
{
    const Csr m = goldenMatrix();
    const std::vector<double> b(
        static_cast<std::size_t>(m.rows()), 1.0);

    FaultCampaign camp;
    camp.seed = 7;
    camp.stuckCellRate = 0.002;
    camp.transientUpsetRate = 0.01;
    camp.saturationRate = 0.1;
    camp.forcedDeadBlock = 0;

    telemetry::reset();
    FaultyAccelOperator faulty(m, camp);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 600;
    ResilientSolver solver(faulty, SolverKind::Cg, cfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);

    std::ostringstream out;
    out << "golden resilient_cg v1\n";
    out << "matrix tiled rows=" << m.rows() << " nnz=" << m.nnz()
        << "\n";
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(fnv1a(x)));
    out << "iterations " << r.iterations << "\n";
    out << "converged " << (r.converged ? 1 : 0) << "\n";
    out << "rel_residual " << hexDouble(r.relResidual) << "\n";
    out << "x_hash " << hash << "\n";
    out << "segments " << r.recovery.segments << "\n";
    out << "scrubs " << r.recovery.scrubs << "\n";
    out << "reprograms " << r.recovery.reprograms << "\n";
    out << "restarts " << r.recovery.checkpointRestarts << "\n";
    out << "fallbacks " << r.recovery.fallbacks << "\n";
    out << "degraded " << r.recovery.degradedBlocks << "\n";
    appendCounters(out);
    return out.str();
}

/** Compare (or, under MSC_REGEN_GOLDEN=1, rewrite) one golden. */
void
checkGolden(const std::string &file, const std::string &actual)
{
    const std::string path =
        std::string(MSC_GOLDEN_DIR) + "/" + file;
    if (const char *regen = std::getenv("MSC_REGEN_GOLDEN");
        regen && std::strcmp(regen, "0") != 0) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (regenerate with MSC_REGEN_GOLDEN=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "golden mismatch for " << file
        << "; if intentional, regenerate with MSC_REGEN_GOLDEN=1 "
           "and review the diff";
}

/** Run a trace builder at 1 and 4 threads: both must match the
 *  golden (and therefore each other) byte for byte. */
template <typename Fn>
void
runAtBothThreadCounts(const std::string &file, Fn &&build)
{
    setLogQuiet(true);
    telemetry::Config tcfg;
    tcfg.enabled = true;
    tcfg.spans = false;
    telemetry::configure(tcfg);

    setGlobalThreads(1);
    const std::string t1 = build();
    checkGolden(file, t1);

    setGlobalThreads(4);
    const std::string t4 = build();
    EXPECT_EQ(t1, t4) << file
                      << ": trace differs between 1 and 4 threads";

    setGlobalThreads(0);
    telemetry::setEnabled(false);
    setLogQuiet(false);
}

TEST(Golden, CleanCgTrajectory)
{
    runAtBothThreadCounts("clean_cg.txt", cleanCgTrace);
}

TEST(Golden, ResilientSolveUnderFaults)
{
    runAtBothThreadCounts("resilient_cg.txt", resilientTrace);
}

} // namespace
