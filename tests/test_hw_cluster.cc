/**
 * @file
 * Tests for the hardware-faithful cluster: equivalence with the
 * functional model and the exact-dot oracle, and fault injection
 * through the AN error-correction path (Section IV-E).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/hw_cluster.hh"
#include "util/random.hh"

namespace msc {
namespace {

MatrixBlock
randomBlock(Rng &rng, unsigned size, double density, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(density))
                continue;
            b.elems.push_back(
                {static_cast<std::int32_t>(r),
                 static_cast<std::int32_t>(c),
                 std::ldexp(rng.uniform(1.0, 2.0),
                            static_cast<int>(rng.range(0,
                                                       expSpread))) *
                     (rng.chance(0.5) ? -1.0 : 1.0)});
        }
    }
    return b;
}

std::vector<double>
randomVector(Rng &rng, unsigned size, int expSpread)
{
    std::vector<double> x(size);
    for (auto &v : x) {
        v = rng.chance(0.1)
            ? 0.0
            : std::ldexp(rng.uniform(1.0, 2.0),
                         static_cast<int>(rng.range(0, expSpread))) *
                  (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return x;
}

void
oracle(const MatrixBlock &b, const std::vector<double> &x,
       RoundingMode mode, std::vector<double> &out)
{
    out.assign(b.size, 0.0);
    for (unsigned i = 0; i < b.size; ++i) {
        std::vector<double> ar, xr;
        for (const auto &el : b.elems) {
            if (el.row == static_cast<std::int32_t>(i)) {
                ar.push_back(el.val);
                xr.push_back(x[static_cast<std::size_t>(el.col)]);
            }
        }
        if (!ar.empty())
            out[i] = exactDot(ar.data(), xr.data(), ar.size(), mode);
    }
}

TEST(HwCluster, MatchesOracleOnCleanHardware)
{
    Rng rng(701);
    HwCluster::Config cfg;
    cfg.size = 16;
    HwCluster hw(cfg);
    for (int trial = 0; trial < 5; ++trial) {
        const MatrixBlock b = randomBlock(rng, 16, 0.4, 16);
        hw.program(b);
        const auto x = randomVector(rng, 16, 16);
        std::vector<double> y(16), ref;
        const HwClusterStats stats = hw.multiply(x, y);
        oracle(b, x, cfg.rounding, ref);
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(y[i], ref[i]) << "row " << i;
        EXPECT_EQ(stats.correctedWords, 0u);
        EXPECT_EQ(stats.uncorrectableWords, 0u);
        EXPECT_GT(stats.sliceWords, 0u);
    }
}

TEST(HwCluster, MatchesFunctionalClusterModel)
{
    Rng rng(709);
    HwCluster::Config hwCfg;
    hwCfg.size = 16;
    HwCluster hw(hwCfg);
    ClusterConfig fnCfg;
    fnCfg.size = 16;
    Cluster fn(fnCfg);
    for (int trial = 0; trial < 5; ++trial) {
        const MatrixBlock b = randomBlock(rng, 16, 0.5, 24);
        hw.program(b);
        fn.program(b);
        const auto x = randomVector(rng, 16, 24);
        std::vector<double> yHw(16), yFn(16);
        hw.multiply(x, yHw);
        fn.multiply(x, yFn);
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(yHw[i], yFn[i]) << "row " << i;
    }
}

TEST(HwCluster, AnalogReadsWithIdealCellsStayExact)
{
    Rng rng(719);
    HwCluster::Config cfg;
    cfg.size = 16;
    cfg.analogReads = true; // ideal CellParams: no noise, tiny leak
    HwCluster hw(cfg);
    const MatrixBlock b = randomBlock(rng, 16, 0.4, 10);
    hw.program(b);
    const auto x = randomVector(rng, 16, 10);
    std::vector<double> y(16), ref;
    Rng noise(1);
    hw.multiply(x, y, &noise);
    oracle(b, x, cfg.rounding, ref);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(y[i], ref[i]);
}

TEST(HwCluster, SingleStuckCellIsCorrected)
{
    Rng rng(727);
    HwCluster::Config cfg;
    cfg.size = 16;
    HwCluster hw(cfg);
    const MatrixBlock b = randomBlock(rng, 16, 0.5, 12);
    const auto x = randomVector(rng, 16, 12);
    std::vector<double> ref;
    oracle(b, x, cfg.rounding, ref);

    for (unsigned slice : {0u, 5u, 33u, 60u}) {
        hw.program(b);
        // Flip one stored bit somewhere in the middle of the array.
        hw.flipCell(slice, 7, 3);
        std::vector<double> y(16);
        const HwClusterStats stats = hw.multiply(x, y);
        // The flip corrupts one conversion per applied vector slice
        // in which row 3 participates; every corrupted word must be
        // corrected and the results stay bit-exact.
        EXPECT_EQ(stats.uncorrectableWords, 0u) << "slice " << slice;
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(y[i], ref[i])
                << "slice " << slice << " row " << i;
    }
}

TEST(HwCluster, StuckCellChangesResultWithoutAnCode)
{
    Rng rng(733);
    HwCluster::Config cfg;
    cfg.size = 16;
    cfg.anProtect = false;
    HwCluster hw(cfg);
    const MatrixBlock b = randomBlock(rng, 16, 0.6, 12);
    const auto x = randomVector(rng, 16, 12);
    std::vector<double> ref;
    oracle(b, x, cfg.rounding, ref);

    hw.program(b);
    // Flip a HIGH-significance stored bit of row 3.
    hw.flipCell(60, 3, 5);
    std::vector<double> y(16);
    hw.multiply(x, y);
    // Without protection the corrupted row is wrong (x[5] != 0 with
    // overwhelming probability given the generator).
    EXPECT_NE(y[3], ref[3]);
    // Other rows are untouched.
    for (unsigned i = 0; i < 16; ++i) {
        if (i != 3)
            EXPECT_EQ(y[i], ref[i]) << "row " << i;
    }
}

TEST(HwCluster, TwoFaultsInOneWordAreFlagged)
{
    Rng rng(739);
    HwCluster::Config cfg;
    cfg.size = 16;
    HwCluster hw(cfg);
    const MatrixBlock b = randomBlock(rng, 16, 0.7, 8);
    const auto x = randomVector(rng, 16, 8);

    hw.program(b);
    // Two flips in the same output column (same reduced word).
    hw.flipCell(10, 4, 2);
    hw.flipCell(41, 4, 9);
    std::vector<double> y(16);
    const HwClusterStats stats = hw.multiply(x, y);
    // Whenever both faulty inputs are activated by the same slice,
    // the word has a double error: not silently accepted.
    EXPECT_GT(stats.uncorrectableWords + stats.correctedWords, 0u);
}

TEST(HwCluster, FaultsInDifferentOutputsBothCorrected)
{
    Rng rng(743);
    HwCluster::Config cfg;
    cfg.size = 16;
    HwCluster hw(cfg);
    const MatrixBlock b = randomBlock(rng, 16, 0.5, 10);
    const auto x = randomVector(rng, 16, 10);
    std::vector<double> ref;
    oracle(b, x, cfg.rounding, ref);

    hw.program(b);
    hw.flipCell(12, 2, 6);  // output row 2
    hw.flipCell(30, 11, 6); // output row 11: separate reduced words
    std::vector<double> y(16);
    const HwClusterStats stats = hw.multiply(x, y);
    EXPECT_EQ(stats.uncorrectableWords, 0u);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(y[i], ref[i]) << "row " << i;
}

TEST(HwCluster, CicReportsInvertedColumns)
{
    // A dense all-positive block drives CIC inversions.
    Rng rng(751);
    HwCluster::Config cfg;
    cfg.size = 16;
    HwCluster hw(cfg);
    MatrixBlock b;
    b.size = 16;
    for (std::int32_t r = 0; r < 16; ++r)
        for (std::int32_t c = 0; c < 16; ++c)
            b.elems.push_back({r, c, rng.uniform(1.0, 2.0)});
    hw.program(b);
    const auto x = randomVector(rng, 16, 4);
    std::vector<double> y(16), ref;
    const HwClusterStats stats = hw.multiply(x, y);
    oracle(b, x, cfg.rounding, ref);
    EXPECT_GT(stats.cicInvertedColumns, 0u);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(y[i], ref[i]) << "row " << i;
}

TEST(HwCluster, Misuse)
{
    HwCluster::Config cfg;
    cfg.size = 8;
    HwCluster hw(cfg);
    std::vector<double> x(8), y(8);
    EXPECT_THROW(hw.multiply(x, y), FatalError);
    MatrixBlock big;
    big.size = 16;
    EXPECT_THROW(hw.program(big), FatalError);
    MatrixBlock ok;
    ok.size = 8;
    ok.elems = {{0, 0, 1.0}};
    hw.program(ok);
    EXPECT_THROW(hw.flipCell(200, 0, 0), FatalError);
}

} // namespace
} // namespace msc
