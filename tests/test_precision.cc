/**
 * @file
 * Arbitrary-precision tests: the paper's abstract claims the
 * accelerator "can be architected to arbitrary precision
 * requirements." The cluster's target significand width must be
 * honored bit-exactly and must reduce the executed work.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hh"
#include "util/random.hh"

namespace msc {
namespace {

MatrixBlock
randomBlock(Rng &rng, unsigned size, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(0.5))
                continue;
            b.elems.push_back(
                {static_cast<std::int32_t>(r),
                 static_cast<std::int32_t>(c),
                 std::ldexp(rng.uniform(1.0, 2.0),
                            static_cast<int>(rng.range(0,
                                                       expSpread))) *
                     (rng.chance(0.5) ? -1.0 : 1.0)});
        }
    }
    return b;
}

TEST(Precision, FixedToDoubleHonorsMantissaWidth)
{
    // 0b1111 at 4-bit precision is exact; at 3 bits it rounds.
    EXPECT_EQ(fixedToDouble(false, U256(15), 0,
                            RoundingMode::NearestEven, 4), 15.0);
    EXPECT_EQ(fixedToDouble(false, U256(15), 0,
                            RoundingMode::NearestEven, 3), 16.0);
    EXPECT_EQ(fixedToDouble(false, U256(15), 0,
                            RoundingMode::TowardZero, 3), 14.0);
    EXPECT_THROW(fixedToDouble(false, U256(1), 0,
                               RoundingMode::NearestEven, 0),
                 PanicError);
    EXPECT_THROW(fixedToDouble(false, U256(1), 0,
                               RoundingMode::NearestEven, 54),
                 PanicError);
}

TEST(Precision, ExactDotAtReducedPrecision)
{
    // 2^30 + 1 needs 31 bits; at 24-bit (float-class) precision the
    // +1 is rounded away.
    const double a[] = {0x1.0p30, 1.0};
    const double x[] = {1.0, 1.0};
    EXPECT_EQ(exactDot(a, x, 2, RoundingMode::NearestEven, 53),
              0x1.0p30 + 1);
    EXPECT_EQ(exactDot(a, x, 2, RoundingMode::NearestEven, 24),
              0x1.0p30);
    EXPECT_EQ(exactDot(a, x, 2, RoundingMode::TowardPosInf, 24),
              0x1.0p30 + 0x1.0p7); // next 24-bit value up
}

TEST(Precision, ClusterMatchesOracleAtEveryTarget)
{
    Rng rng(1501);
    for (unsigned bits : {8u, 16u, 24u, 32u, 44u, 53u}) {
        ClusterConfig cfg;
        cfg.size = 16;
        cfg.targetMantissaBits = bits;
        Cluster cluster(cfg);
        for (int trial = 0; trial < 4; ++trial) {
            const MatrixBlock b = randomBlock(rng, 16, 24);
            cluster.program(b);
            std::vector<double> x(16);
            for (auto &v : x) {
                v = std::ldexp(rng.uniform(1.0, 2.0),
                               static_cast<int>(rng.range(0, 20))) *
                    (rng.chance(0.5) ? -1.0 : 1.0);
            }
            std::vector<double> y(16);
            cluster.multiply(x, y);
            for (unsigned i = 0; i < 16; ++i) {
                std::vector<double> ar, xr;
                for (const auto &el : b.elems) {
                    if (el.row == static_cast<std::int32_t>(i)) {
                        ar.push_back(el.val);
                        xr.push_back(
                            x[static_cast<std::size_t>(el.col)]);
                    }
                }
                const double expect = ar.empty()
                    ? 0.0
                    : exactDot(ar.data(), xr.data(), ar.size(),
                               cfg.rounding, bits);
                EXPECT_EQ(y[i], expect)
                    << "bits " << bits << " row " << i;
            }
        }
    }
}

TEST(Precision, LowerTargetsSaveWork)
{
    Rng rng(1507);
    const MatrixBlock b = randomBlock(rng, 32, 40);
    std::vector<double> x(32);
    for (auto &v : x) {
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, 30))) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    std::uint64_t prevConversions = 0;
    for (unsigned bits : {53u, 32u, 16u}) {
        ClusterConfig cfg;
        cfg.size = 32;
        cfg.targetMantissaBits = bits;
        Cluster cluster(cfg);
        cluster.program(b);
        std::vector<double> y(32);
        const ClusterStats s = cluster.multiply(x, y);
        if (prevConversions != 0) {
            EXPECT_LE(s.adcConversions, prevConversions)
                << "bits " << bits;
        }
        prevConversions = s.adcConversions;
    }
}

TEST(Precision, RejectsBadTargets)
{
    ClusterConfig cfg;
    cfg.targetMantissaBits = 0;
    EXPECT_THROW(Cluster{cfg}, FatalError);
    cfg.targetMantissaBits = 54;
    EXPECT_THROW(Cluster{cfg}, FatalError);
}

} // namespace
} // namespace msc
