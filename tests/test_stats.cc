/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hh"

namespace msc {
namespace {

TEST(Stats, ScalarAccumulatesAndMeans)
{
    stats::Group g("test");
    stats::Scalar s(g, "counter", "a counter");
    ++s;
    s += 4.0;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, DistributionMoments)
{
    stats::Group g("test");
    stats::Distribution d(g, "lat", "latency");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 4.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    stats::Group g("test");
    stats::Scalar a(g, "a", "");
    stats::Scalar b(g, "b", "");
    stats::Formula ratio(g, "ratio", "a/b", [&] {
        return b.value() != 0.0 ? a.value() / b.value() : 0.0;
    });
    a += 6.0;
    b += 3.0;
    EXPECT_DOUBLE_EQ(ratio.value(), 2.0);
    b += 3.0;
    EXPECT_DOUBLE_EQ(ratio.value(), 1.0);
}

TEST(Stats, GroupDumpContainsEverything)
{
    stats::Group root("system");
    stats::Group child(root, "bank0");
    stats::Scalar s1(root, "ops", "operations");
    stats::Scalar s2(child, "irq", "interrupts");
    s1 += 7.0;
    s2 += 2.0;
    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("system"), std::string::npos);
    EXPECT_NE(out.find("bank0"), std::string::npos);
    EXPECT_NE(out.find("ops"), std::string::npos);
    EXPECT_NE(out.find("irq"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    stats::Group root("r");
    stats::Group child(root, "c");
    stats::Scalar a(root, "a", "");
    stats::Distribution d(child, "d", "");
    a += 5.0;
    d.sample(9.0);
    root.resetAll();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

} // namespace
} // namespace msc
