/**
 * @file
 * Tests for preconditioners, PCG, and plain BiCG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/precond.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

double
relResidual(const Csr &a, std::span<const double> b,
            std::span<const double> x)
{
    std::vector<double> ax(b.size());
    a.spmv(x, ax);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        num += (b[i] - ax[i]) * (b[i] - ax[i]);
        den += b[i] * b[i];
    }
    return std::sqrt(num / den);
}

Csr
spdMatrix(std::int32_t n, std::uint64_t seed, double expSigma = 3.0)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.03;
    p.values.tileExpSigma = expSigma;
    p.seed = seed;
    return genTiled(p);
}

TEST(Precond, JacobiInvertsDiagonal)
{
    Coo coo;
    coo.rows = coo.cols = 3;
    coo.add(0, 0, 2.0);
    coo.add(1, 1, 4.0);
    coo.add(2, 2, 0.5);
    const Csr m = Csr::fromCoo(coo);
    const JacobiPreconditioner jac(m);
    std::vector<double> r{2.0, 4.0, 1.0}, z(3);
    jac.apply(r, z);
    EXPECT_DOUBLE_EQ(z[0], 1.0);
    EXPECT_DOUBLE_EQ(z[1], 1.0);
    EXPECT_DOUBLE_EQ(z[2], 2.0);
    EXPECT_EQ(jac.opsPerApply(), 3.0);
}

TEST(Precond, JacobiRejectsZeroDiagonal)
{
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(0, 0, 1.0);
    coo.add(1, 0, 1.0); // no (1,1)
    const Csr m = Csr::fromCoo(coo);
    EXPECT_THROW(JacobiPreconditioner{m}, FatalError);
}

TEST(Precond, SgsSolvesTriangularFactorsExactly)
{
    // For a diagonal matrix, SGS reduces to Jacobi.
    Coo coo;
    coo.rows = coo.cols = 4;
    for (std::int32_t i = 0; i < 4; ++i)
        coo.add(i, i, 2.0);
    const Csr m = Csr::fromCoo(coo);
    const SymmetricGaussSeidelPreconditioner sgs(m);
    std::vector<double> r{2, 4, 6, 8}, z(4);
    sgs.apply(r, z);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(z[i], r[i] / 2.0);
}

TEST(Precond, IdentityIsNoOp)
{
    const IdentityPreconditioner id;
    std::vector<double> r{1.0, -2.0}, z(2);
    id.apply(r, z);
    EXPECT_EQ(z, r);
}

TEST(Precond, PcgWithIdentityMatchesCg)
{
    const Csr a = spdMatrix(400, 811);
    CsrOperator op(a);
    std::vector<double> b(400, 1.0);
    std::vector<double> x1(400, 0.0), x2(400, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    const SolverResult plain = conjugateGradient(op, b, x1, cfg);
    const IdentityPreconditioner id;
    const SolverResult pcg = preconditionedCg(op, id, b, x2, cfg);
    EXPECT_TRUE(plain.converged);
    EXPECT_TRUE(pcg.converged);
    // Same Krylov process: identical iteration counts.
    EXPECT_EQ(pcg.iterations, plain.iterations);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-9 * (1 + std::fabs(x1[i])));
}

TEST(Precond, JacobiAcceleratesIllScaledSystems)
{
    // Wide value spread: unpreconditioned CG crawls; Jacobi fixes
    // the scaling.
    const Csr a = spdMatrix(600, 821, 8.0);
    CsrOperator op(a);
    std::vector<double> b(600, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    std::vector<double> x1(600, 0.0), x2(600, 0.0);
    const SolverResult plain = conjugateGradient(op, b, x1, cfg);
    const JacobiPreconditioner jac(a);
    const SolverResult pcg = preconditionedCg(op, jac, b, x2, cfg);
    EXPECT_TRUE(pcg.converged);
    EXPECT_LT(pcg.iterations, plain.iterations);
    EXPECT_LT(relResidual(a, b, x2), 1e-6);
    EXPECT_GT(pcg.precondApplies, 0u);
}

TEST(Precond, SgsBeatsJacobiOnIterations)
{
    const Csr a = spdMatrix(600, 823, 5.0);
    CsrOperator op(a);
    std::vector<double> b(600, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    std::vector<double> xj(600, 0.0), xs(600, 0.0);
    const JacobiPreconditioner jac(a);
    const SymmetricGaussSeidelPreconditioner sgs(a);
    const SolverResult rj = preconditionedCg(op, jac, b, xj, cfg);
    const SolverResult rs = preconditionedCg(op, sgs, b, xs, cfg);
    EXPECT_TRUE(rs.converged);
    EXPECT_LE(rs.iterations, rj.iterations);
    EXPECT_LT(relResidual(a, b, xs), 1e-6);
}

TEST(Precond, Ilu0ExactOnDenseFactorizablePattern)
{
    // For a matrix whose LU factors fit the original pattern (e.g. a
    // tridiagonal matrix), ILU(0) is an exact factorization and PCG
    // converges in one iteration.
    Coo coo;
    const std::int32_t n = 50;
    coo.rows = coo.cols = n;
    for (std::int32_t i = 0; i < n; ++i) {
        coo.add(i, i, 4.0);
        if (i + 1 < n) {
            coo.add(i, i + 1, -1.0);
            coo.add(i + 1, i, -1.0);
        }
    }
    const Csr m = Csr::fromCoo(coo);
    const Ilu0Preconditioner ilu(m);
    CsrOperator op(m);
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    std::vector<double> x(b.size(), 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-12;
    const SolverResult r = preconditionedCg(op, ilu, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 2);
    EXPECT_LT(relResidual(m, b, x), 1e-10);
}

TEST(Precond, Ilu0SolveMatchesFactorsOnTriangularSystems)
{
    // M z = r with M = L U: applying then multiplying back through
    // the factors must reproduce r.
    const Csr a = spdMatrix(200, 835);
    const Ilu0Preconditioner ilu(a);
    const Csr &f = ilu.combinedFactors();
    Rng rng(837);
    std::vector<double> r(200), z(200);
    for (auto &v : r)
        v = rng.uniform(-1, 1);
    ilu.apply(r, z);
    // Reconstruct M z = L(U z): U z first.
    std::vector<double> uz(200, 0.0), luz(200, 0.0);
    for (std::int32_t i = 0; i < 200; ++i) {
        const auto cols = f.rowCols(i);
        const auto vals = f.rowVals(i);
        double acc = 0.0;
        for (std::size_t p = 0; p < cols.size(); ++p) {
            if (cols[p] >= i)
                acc += vals[p] * z[static_cast<std::size_t>(cols[p])];
        }
        uz[static_cast<std::size_t>(i)] = acc;
    }
    for (std::int32_t i = 0; i < 200; ++i) {
        const auto cols = f.rowCols(i);
        const auto vals = f.rowVals(i);
        double acc = uz[static_cast<std::size_t>(i)]; // unit diag
        for (std::size_t p = 0; p < cols.size(); ++p) {
            if (cols[p] < i)
                acc += vals[p] *
                       uz[static_cast<std::size_t>(cols[p])];
        }
        luz[static_cast<std::size_t>(i)] = acc;
    }
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_NEAR(luz[i], r[i], 1e-10 * (1 + std::fabs(r[i])));
}

TEST(Precond, Ilu0BeatsJacobiOnHardSystems)
{
    const Csr a = spdMatrix(600, 839, 6.0);
    CsrOperator op(a);
    std::vector<double> b(600, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    std::vector<double> xj(600, 0.0), xi(600, 0.0);
    const JacobiPreconditioner jac(a);
    const Ilu0Preconditioner ilu(a);
    const SolverResult rj = preconditionedCg(op, jac, b, xj, cfg);
    const SolverResult ri = preconditionedCg(op, ilu, b, xi, cfg);
    EXPECT_TRUE(ri.converged);
    EXPECT_LT(ri.iterations, rj.iterations);
    EXPECT_LT(relResidual(a, b, xi), 1e-6);
}

TEST(Precond, Ilu0RejectsMissingDiagonal)
{
    Coo coo;
    coo.rows = coo.cols = 3;
    coo.add(0, 0, 1.0);
    coo.add(1, 1, 1.0);
    coo.add(2, 0, 1.0); // no (2,2)
    EXPECT_THROW(Ilu0Preconditioner{Csr::fromCoo(coo)}, FatalError);
}

TEST(BiCg, SolvesNonSymmetricSystem)
{
    TiledParams p;
    p.rows = 400;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.scatterPerRow = 1.0;
    p.symmetricPattern = false;
    p.diagDominance = 0.15;
    p.seed = 827;
    const Csr a = genTiled(p);
    CsrOperator op(a);
    std::vector<double> b(400, 1.0), x(400, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-9;
    const SolverResult r = biCg(op, b, x, cfg);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-7);
    // Two MVMs per iteration (A and A^T).
    EXPECT_NEAR(static_cast<double>(r.spmvCalls),
                2.0 * r.iterations + 1, 2.0);
}

TEST(BiCg, MatchesCgOnSpdSystems)
{
    const Csr a = spdMatrix(300, 829);
    CsrOperator op(a);
    std::vector<double> b(300, 1.0);
    std::vector<double> x1(300, 0.0), x2(300, 0.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    conjugateGradient(op, b, x1, cfg);
    const SolverResult r = biCg(op, b, x2, cfg);
    EXPECT_TRUE(r.converged);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-7 * (1 + std::fabs(x1[i])));
}

} // namespace
} // namespace msc
