/**
 * @file
 * Tests for the A = 251 AN error-correcting code (Section IV-E).
 */

#include <gtest/gtest.h>

#include "ancode/ancode.hh"
#include "util/random.hh"

namespace msc {
namespace {

TEST(AnCode, DefaultsMatchPaperOperandWidth)
{
    // A = 269 (not the paper's 251 -- see the header rationale): a
    // nine-bit constant whose syndromes are unique over the operand.
    const AnCode code;
    EXPECT_EQ(code.a(), 269u);
    EXPECT_EQ(code.dataBits(), 118u);
    // 118 data bits + 9 check bits = the paper's 127-bit operand.
    EXPECT_EQ(code.codeBits(), 127u);
    EXPECT_EQ(code.ord2(), 268u);
    EXPECT_GE(code.uniqueWindow(), code.codeBits());
}

TEST(AnCode, PaperConstant251IsAmbiguous)
{
    // ord_2(251) = 50: +/-2^p syndromes collide every 25 bits, so
    // single-bit correction over a wide operand is not unique. This
    // documents why the default deviates from the paper.
    const AnCode code(251, 118);
    EXPECT_EQ(code.ord2(), 50u);
    EXPECT_EQ(code.uniqueWindow(), 25u);
    EXPECT_LT(code.uniqueWindow(), code.codeBits());
}

TEST(AnCode, EncodeDecodeRoundTrip)
{
    const AnCode code;
    Rng rng(43);
    for (int i = 0; i < 200; ++i) {
        U128 v;
        v.setWord(0, rng.next());
        v.setWord(1, rng.next() & ((std::uint64_t{1} << 54) - 1));
        const U256 w = code.encode(v);
        EXPECT_TRUE(code.check(w));
        EXPECT_EQ(code.decode(w), v);
    }
}

TEST(AnCode, EncodeRejectsOversizedValue)
{
    const AnCode code;
    U128 v;
    v.setBit(118); // 119 bits
    EXPECT_THROW(code.encode(v), PanicError);
}

TEST(AnCode, ZeroIsACodeWord)
{
    const AnCode code;
    const U256 w = code.encode(U128(0));
    EXPECT_TRUE(w.isZero());
    EXPECT_TRUE(code.check(w));
}

TEST(AnCode, DetectsEveryBitFlip)
{
    const AnCode code;
    const U256 w = code.encode(U128(0x123456789abcdefULL));
    for (unsigned p = 0; p < code.codeBits(); ++p) {
        U256 bad = w;
        bad.flipBit(p);
        EXPECT_FALSE(code.check(bad)) << "p=" << p;
    }
}

TEST(AnCode, CorrectsEveryBitFlipAcrossFullOperand)
{
    const AnCode code;
    Rng rng(47);
    for (int trial = 0; trial < 20; ++trial) {
        U128 v;
        v.setWord(0, rng.next());
        v.setWord(1, rng.next() & ((std::uint64_t{1} << 50) - 1));
        const U256 w = code.encode(v);
        for (unsigned p = 0; p < code.codeBits(); ++p) {
            U256 bad = w;
            bad.flipBit(p);
            const auto outcome = code.correct(bad);
            EXPECT_EQ(outcome, AnCode::Outcome::Corrected)
                << "p=" << p;
            EXPECT_EQ(bad, w) << "p=" << p;
        }
    }
}

TEST(AnCode, CorrectsAdditiveAdcErrors)
{
    // An ADC misread adds +/- 2^p with carry propagation; correction
    // must handle the additive (non-bit-flip) form.
    const AnCode code;
    U128 v(0xffffULL);
    v.setBit(100); // keep the code word above every subtracted 2^p
    const U256 w = code.encode(v);
    for (unsigned p = 0; p < 60; ++p) {
        U256 plus = w + (U256(1) << p);
        EXPECT_EQ(code.correct(plus, 125), AnCode::Outcome::Corrected);
        EXPECT_EQ(plus, w);
        U256 minus = w - (U256(1) << p);
        EXPECT_EQ(code.correct(minus, 125),
                  AnCode::Outcome::Corrected);
        EXPECT_EQ(minus, w);
    }
}

TEST(AnCode, CleanWordUntouched)
{
    const AnCode code;
    U256 w = code.encode(U128(77));
    const U256 orig = w;
    EXPECT_EQ(code.correct(w), AnCode::Outcome::Clean);
    EXPECT_EQ(w, orig);
}

TEST(AnCode, DoubleErrorsAlwaysDetected)
{
    // Two simultaneous flips exceed the single-error correction
    // capability. They must never be reported Clean. A class of
    // double flips is arithmetically identical to a single additive
    // error (adjacent bits flipped in opposite directions) and is
    // legitimately recovered; the rest either miscorrect to a
    // *valid* code word or are flagged Uncorrectable. This test
    // asserts exactly those facts.
    const AnCode code;
    Rng rng(53);
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        U128 v;
        v.setWord(0, rng.next());
        const U256 w = code.encode(v);
        U256 bad = w;
        const unsigned p1 = static_cast<unsigned>(rng.below(100));
        unsigned p2 = static_cast<unsigned>(rng.below(100));
        while (p2 == p1)
            p2 = static_cast<unsigned>(rng.below(100));
        bad.flipBit(p1);
        bad.flipBit(p2);
        ASSERT_FALSE(code.check(bad)); // never silently accepted
        const auto outcome = code.correct(bad, 125);
        ASSERT_NE(outcome, AnCode::Outcome::Clean);
        if (outcome == AnCode::Outcome::Corrected) {
            EXPECT_TRUE(code.check(bad));
        }
    }
}

TEST(AnCode, AdjacentOppositeFlipsRecoverExactly)
{
    // Flipping bit p from 1->0 and bit p+1 from 0->1 adds exactly
    // 2^p; correction must recover the original word.
    const AnCode code;
    const U128 v(0b1010101);
    const U256 w = code.encode(v);
    // Find a position with bit=1, bit+1=0.
    for (unsigned p = 0; p + 1 < 60; ++p) {
        if (w.bit(p) && !w.bit(p + 1)) {
            U256 bad = w;
            bad.flipBit(p);
            bad.flipBit(p + 1);
            EXPECT_EQ(code.correct(bad, 125),
                      AnCode::Outcome::Corrected);
            EXPECT_EQ(bad, w);
            break;
        }
    }
}

TEST(AnCode, DecodeNonCodeWordPanics)
{
    const AnCode code;
    U256 w = code.encode(U128(5));
    w.flipBit(3);
    EXPECT_THROW(code.decode(w), PanicError);
}

TEST(AnCode, SmallCodeAlsoWorks)
{
    // A = 19 over 16-bit data: sanity for parameterization.
    const AnCode code(19, 16);
    const U128 v(0xabcd);
    U256 w = code.encode(v);
    EXPECT_TRUE(code.check(w));
    EXPECT_EQ(code.decode(w), v);
    // With A=19, ord(2) = 18, so only 18 positions are unambiguous.
    w.flipBit(5);
    EXPECT_EQ(code.correct(w, 18), AnCode::Outcome::Corrected);
    EXPECT_EQ(code.decode(w), v);
}

TEST(AnCode, CorrectSignedHandlesSignCrossing)
{
    // A small positive word A*3 hit by a -2^40 error: the corrupted
    // magnitude is 2^40 - A*3 with a flipped sign. Signed correction
    // must recover both value and sign.
    const AnCode code;
    const U256 truth = code.encode(U128(3)); // 807
    U256 mag = (U256(1) << 40) - truth;
    bool neg = true; // the corrupted word looks negative
    EXPECT_EQ(code.correctSigned(mag, neg, 125),
              AnCode::Outcome::Corrected);
    EXPECT_FALSE(neg);
    EXPECT_EQ(mag, truth);
}

TEST(AnCode, CorrectSignedNegativeTruth)
{
    // Truth is -A*7; a +2^50 error flips it positive.
    const AnCode code;
    const U256 truth = code.encode(U128(7));
    U256 mag = (U256(1) << 50) - truth;
    bool neg = false;
    EXPECT_EQ(code.correctSigned(mag, neg, 125),
              AnCode::Outcome::Corrected);
    EXPECT_TRUE(neg);
    EXPECT_EQ(mag, truth);
}

TEST(AnCode, CorrectSignedMatchesUnsignedOnEasyCases)
{
    const AnCode code;
    Rng rng(57);
    for (int t = 0; t < 50; ++t) {
        U128 v;
        v.setWord(0, rng.next());
        v.setWord(1, rng.next() & 0xffffffffULL);
        const U256 w = code.encode(v);
        U256 bad = w;
        bad.flipBit(static_cast<unsigned>(rng.below(100)));
        bool neg = false;
        EXPECT_EQ(code.correctSigned(bad, neg),
                  AnCode::Outcome::Corrected);
        EXPECT_FALSE(neg);
        EXPECT_EQ(bad, w);
    }
}

TEST(AnCode, CorrectSignedCleanWord)
{
    const AnCode code;
    U256 w = code.encode(U128(123));
    bool neg = true;
    EXPECT_EQ(code.correctSigned(w, neg), AnCode::Outcome::Clean);
    EXPECT_TRUE(neg); // sign untouched on clean nonzero words
}

TEST(AnCode, RejectsBadConstants)
{
    EXPECT_THROW(AnCode(250, 118), FatalError); // even
    EXPECT_THROW(AnCode(1, 118), FatalError);   // too small
    EXPECT_THROW(AnCode(251, 260), FatalError); // operand too wide
}

TEST(AnCode, CorrectSignedSignFlipAtEveryLowPosition)
{
    // Any error -2^p with 2^p > A*v flips the sign; signed
    // correction must undo all of them, not just one position.
    const AnCode code;
    const U256 truth = code.encode(U128(1)); // 269, 9 bits
    for (unsigned p = 10; p < 120; ++p) {
        U256 mag = (U256(1) << p) - truth;
        bool neg = true;
        EXPECT_EQ(code.correctSigned(mag, neg),
                  AnCode::Outcome::Corrected) << "p=" << p;
        EXPECT_FALSE(neg) << "p=" << p;
        EXPECT_EQ(mag, truth) << "p=" << p;
    }
}

TEST(AnCode, CorrectSignedDoubleBitUncorrectable)
{
    // A double error 2^p + 2^q whose combined syndrome matches no
    // +/-2^m with m inside the operand must be flagged Uncorrectable
    // and must leave the word untouched. Such syndromes exist
    // because the operand (127 bits) covers only part of the 268
    // nonzero residues mod 269.
    const AnCode code;
    const std::uint64_t a = code.a();
    // Discrete log base 2 mod A (2 is a primitive root of 269).
    std::vector<int> dlog(a, -1);
    std::uint64_t pow = 1;
    for (unsigned p = 0; p < code.ord2(); ++p) {
        if (dlog[pow] < 0)
            dlog[pow] = static_cast<int>(p);
        pow = (pow * 2) % a;
    }
    // Find p < q < codeBits whose sum syndrome has no in-operand
    // interpretation in either direction.
    std::vector<std::uint64_t> pw(code.codeBits());
    pow = 1;
    for (unsigned p = 0; p < code.codeBits(); ++p) {
        pw[p] = pow;
        pow = (pow * 2) % a;
    }
    unsigned foundP = 0, foundQ = 0;
    bool found = false;
    for (unsigned p = 0; p < code.codeBits() && !found; ++p) {
        for (unsigned q = p + 1; q < code.codeBits() && !found;
             ++q) {
            const std::uint64_t s = (pw[p] + pw[q]) % a;
            const std::uint64_t sNeg = (a - s) % a;
            const bool plusIn =
                s != 0 && dlog[s] >= 0 &&
                dlog[s] < static_cast<int>(code.codeBits());
            const bool minusIn =
                sNeg != 0 && dlog[sNeg] >= 0 &&
                dlog[sNeg] < static_cast<int>(code.codeBits());
            if (s != 0 && !plusIn && !minusIn) {
                foundP = p;
                foundQ = q;
                found = true;
            }
        }
    }
    ASSERT_TRUE(found);

    const U256 truth = code.encode(U128(0x1234567));
    U256 mag = truth + (U256(1) << foundP) + (U256(1) << foundQ);
    const U256 corrupted = mag;
    bool neg = false;
    EXPECT_EQ(code.correctSigned(mag, neg),
              AnCode::Outcome::Uncorrectable);
    EXPECT_EQ(mag, corrupted); // untouched on failure
    EXPECT_FALSE(neg);
    // The unsigned path must agree.
    U256 mag2 = corrupted;
    EXPECT_EQ(code.correct(mag2), AnCode::Outcome::Uncorrectable);
    EXPECT_EQ(mag2, corrupted);
}

TEST(AnCode, Paper251AmbiguityWindowMiscorrects)
{
    // With A = 251 (ord_2 = 50, window 25), 2^25 == -1 (mod 251),
    // so a +2^30 error shares its syndrome with -2^5. The decoder
    // picks the low-position interpretation and *adds* 2^5: the
    // result is a valid code word -- silently the wrong one. This is
    // exactly why the default constant deviates from the paper.
    const AnCode code(251, 118);
    const U256 w = code.encode(U128(0xabcde));
    U256 bad = w + (U256(1) << 30);
    EXPECT_EQ(code.correct(bad), AnCode::Outcome::Corrected);
    EXPECT_TRUE(code.check(bad)); // a code word...
    EXPECT_NE(bad, w);            // ...but not the right one
    EXPECT_EQ(bad, w + (U256(1) << 30) + (U256(1) << 5));

    // Restricted to the unique window the same machinery is exact.
    U256 low = w + (U256(1) << 7);
    EXPECT_EQ(code.correct(low, code.uniqueWindow()),
              AnCode::Outcome::Corrected);
    EXPECT_EQ(low, w);

    // correctSigned inherits both behaviours.
    U256 mag = w + (U256(1) << 30);
    bool neg = false;
    EXPECT_EQ(code.correctSigned(mag, neg),
              AnCode::Outcome::Corrected);
    EXPECT_NE(mag, w);
    U256 magLow = w + (U256(1) << 7);
    neg = false;
    EXPECT_EQ(code.correctSigned(magLow, neg, code.uniqueWindow()),
              AnCode::Outcome::Corrected);
    EXPECT_EQ(magLow, w);
    EXPECT_FALSE(neg);
}

TEST(AnCode, CorrectSignedZeroResultNormalizesSign)
{
    // Truth is zero; a -2^12 error leaves the bare error term as a
    // negative magnitude. Correction must return plain zero with the
    // canonical positive sign (-0 must not escape the ECU).
    const AnCode code;
    U256 mag = U256(1) << 12;
    bool neg = true;
    EXPECT_EQ(code.correctSigned(mag, neg),
              AnCode::Outcome::Corrected);
    EXPECT_TRUE(mag.isZero());
    EXPECT_FALSE(neg); // -0 is normalized to +0
}

} // namespace
} // namespace msc
