/**
 * @file
 * Telemetry registry and trace-span semantics: counter
 * monotonicity, histogram bucket edges, interning stability, span
 * nesting across parallelFor workers, the disabled-mode
 * zero-allocation guarantee, and deterministic merge order of the
 * per-thread span buffers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <sstream>
#include <thread>

#include "util/json.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace {

using namespace msc;

// --- allocation counting -------------------------------------------
// Replacing the global operator new for the whole test binary lets
// the disabled-mode test prove that telemetry call sites allocate
// nothing. Counting is keyed off one atomic flag so every other test
// pays a single relaxed load. Sanitizer builds keep their own
// interposed allocator (replacing it trips alloc-dealloc-mismatch),
// so the counting hooks compile away there and the zero-allocation
// assertion is skipped.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MSC_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MSC_COUNT_ALLOCS 0
#endif
#endif
#ifndef MSC_COUNT_ALLOCS
#define MSC_COUNT_ALLOCS 1
#endif

std::atomic<bool> countAllocs{false};
thread_local std::int64_t allocCount = 0;

#if MSC_COUNT_ALLOCS
void *
countedAlloc(std::size_t size)
{
    if (countAllocs.load(std::memory_order_relaxed))
        ++allocCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}
#endif

} // namespace

#if MSC_COUNT_ALLOCS

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#endif // MSC_COUNT_ALLOCS

namespace {

/** Fresh registry state + a known switch setting per test. */
void
setup(bool enabled, bool spans = true)
{
    telemetry::Config cfg;
    cfg.enabled = enabled;
    cfg.spans = spans;
    telemetry::configure(cfg);
    telemetry::reset();
}

TEST(Telemetry, CounterMonotonicityAndInterning)
{
    setup(true, false);
    // Two handles with the same name must intern to the same cell.
    static constinit telemetry::Counter a{"test.shared_counter"};
    static constinit telemetry::Counter b{"test.shared_counter"};
    a.add();
    a.add(3);
    b.add(5);
    EXPECT_EQ(telemetry::counterValue("test.shared_counter"), 9u);

    // Monotonic: adds only ever grow the value.
    std::uint64_t prev = telemetry::counterValue("test.shared_counter");
    for (int i = 0; i < 100; ++i) {
        a.add(static_cast<std::uint64_t>(i % 3));
        const std::uint64_t now =
            telemetry::counterValue("test.shared_counter");
        EXPECT_GE(now, prev);
        prev = now;
    }
    EXPECT_EQ(prev, 9u + 99u); // sum of i%3 over i in [0,100)

    // Interning stability: reset() keeps the cells (and the cached
    // handle pointers) alive; values restart from zero.
    telemetry::reset();
    EXPECT_EQ(telemetry::counterValue("test.shared_counter"), 0u);
    b.add(2);
    EXPECT_EQ(telemetry::counterValue("test.shared_counter"), 2u);

    EXPECT_EQ(telemetry::counterValue("test.never_touched"), 0u);
}

TEST(Telemetry, CounterTotalsAreLaneCountIndependent)
{
    static constinit telemetry::Counter
        ctr{"test.parallel_counter"};
    std::uint64_t expected = 0;
    for (unsigned threads : {1u, 2u, 8u}) {
        setGlobalThreads(threads);
        setup(true, false);
        parallelFor(1000, [&](std::size_t i) {
            ctr.add(static_cast<std::uint64_t>(i % 7));
        });
        const std::uint64_t total =
            telemetry::counterValue("test.parallel_counter");
        if (threads == 1u)
            expected = total;
        EXPECT_EQ(total, expected) << "threads=" << threads;
    }
    setGlobalThreads(0);
}

TEST(Telemetry, GaugeStoresLastValue)
{
    setup(true, false);
    static constinit telemetry::Gauge g{"test.gauge"};
    g.set(1.5);
    g.set(-0.25);
    EXPECT_EQ(telemetry::gaugeValue("test.gauge"), -0.25);
    const auto all = telemetry::snapshotGauges();
    bool found = false;
    for (const auto &[name, value] : all) {
        if (name == "test.gauge") {
            EXPECT_EQ(value, -0.25);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Telemetry, HistogramBucketEdges)
{
    using telemetry::histogramBucket;
    using telemetry::kHistogramBoundsUs;
    using telemetry::kHistogramBuckets;

    // A value exactly on a bound falls into that bound's bucket;
    // just above moves to the next one.
    for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
        EXPECT_EQ(histogramBucket(kHistogramBoundsUs[i]), i);
        EXPECT_EQ(histogramBucket(kHistogramBoundsUs[i] * 1.0001),
                  i + 1);
    }
    EXPECT_EQ(histogramBucket(0.0), 0u);
    EXPECT_EQ(histogramBucket(1e12), kHistogramBuckets - 1);

    setup(true, false);
    static constinit telemetry::Histogram h{"test.hist"};
    h.observe(0.5);     // bucket 0 (<= 1us)
    h.observe(1.0);     // bucket 0 (on the edge)
    h.observe(3.0);     // bucket 2 (<= 5us)
    h.observe(2e7);     // overflow bucket (past the 1e7 bound)
    const auto snaps = telemetry::snapshotHistograms();
    const telemetry::HistogramSnapshot *snap = nullptr;
    for (const auto &s : snaps) {
        if (s.name == "test.hist")
            snap = &s;
    }
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->count, 4u);
    EXPECT_DOUBLE_EQ(snap->sum, 0.5 + 1.0 + 3.0 + 2e7);
    ASSERT_EQ(snap->buckets.size(), kHistogramBuckets);
    EXPECT_EQ(snap->buckets[0], 2u);
    EXPECT_EQ(snap->buckets[2], 1u);
    EXPECT_EQ(snap->buckets[kHistogramBuckets - 1], 1u);
}

TEST(Telemetry, SpanNestingAcrossParallelForWorkers)
{
    setGlobalThreads(4);
    setup(true, true);

    constexpr std::size_t n = 64;
    std::vector<std::thread::id> ranOn(n);
    {
        telemetry::Span outer("test.outer");
        parallelFor(n, [&](std::size_t i) {
            telemetry::Span inner("test.inner");
            ranOn[i] = std::this_thread::get_id();
        });
    }

    const auto spans = telemetry::snapshotSpans();
    ASSERT_EQ(spans.size(), n + 1);

    // Merge order is the global close sequence: strictly increasing,
    // and the outer span (closed last) comes out at the end.
    for (std::size_t i = 0; i + 1 < spans.size(); ++i)
        EXPECT_LT(spans[i].seq, spans[i + 1].seq);
    EXPECT_EQ(spans.back().name, "test.outer");
    EXPECT_EQ(spans.back().depth, 0u);

    // Every thread that executed an index must have recorded onto
    // its own buffer.
    std::set<std::thread::id> osThreads(ranOn.begin(), ranOn.end());
    std::set<std::uint64_t> tids;
    for (const auto &s : spans) {
        if (std::string_view(s.name) == "test.inner")
            tids.insert(s.tid);
    }
    EXPECT_EQ(tids.size(), osThreads.size());

    // Nesting: inner spans on the caller's thread sit below the
    // still-open outer span.
    const std::uint64_t callerTid = spans.back().tid;
    for (const auto &s : spans) {
        if (std::string_view(s.name) != "test.inner")
            continue;
        EXPECT_EQ(s.depth, s.tid == callerTid ? 1u : 0u);
        EXPECT_GE(s.durNs, 0);
    }
    setGlobalThreads(0);
}

TEST(Telemetry, DeterministicMergeOrderIsCloseOrder)
{
    setup(true, true);
    {
        telemetry::Span a("test.a");
        { telemetry::Span b("test.b"); }
    }
    { telemetry::Span c("test.c"); }
    const auto spans = telemetry::snapshotSpans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "test.b"); // children close first
    EXPECT_EQ(spans[1].name, "test.a");
    EXPECT_EQ(spans[2].name, "test.c");
    EXPECT_EQ(spans[0].depth, 1u);
    EXPECT_EQ(spans[1].depth, 0u);
}

TEST(Telemetry, DisabledModeAllocatesNothing)
{
    setup(false);
    ASSERT_FALSE(telemetry::metricsActive());
    ASSERT_FALSE(telemetry::spansActive());

    // Function-local statics: never interned before this test body.
    static constinit telemetry::Counter ctr{"test.disabled_ctr"};
    static constinit telemetry::Gauge gauge{"test.disabled_gauge"};
    static constinit telemetry::Histogram hist{"test.disabled_hist"};

    allocCount = 0;
    countAllocs.store(true, std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        ctr.add();
        ctr.add(7);
        gauge.set(3.14);
        hist.observe(42.0);
        telemetry::Span span("test.disabled_span");
        telemetry::Timer timer(hist);
    }
    countAllocs.store(false, std::memory_order_relaxed);
#if MSC_COUNT_ALLOCS
    EXPECT_EQ(allocCount, 0);
#else
    // Sanitizer build: the interposed allocator stays in place, so
    // only the behavioral half of the guarantee is checked here.
    (void)allocCount;
#endif

    // And nothing was recorded either.
    EXPECT_EQ(telemetry::counterValue("test.disabled_ctr"), 0u);
    EXPECT_TRUE(telemetry::snapshotSpans().empty());
}

TEST(Telemetry, ConfigureControlsBothSwitches)
{
    telemetry::Config cfg;
    cfg.enabled = true;
    cfg.spans = false;
    telemetry::configure(cfg);
    EXPECT_TRUE(telemetry::metricsActive());
    EXPECT_FALSE(telemetry::spansActive());

    cfg.spans = true;
    telemetry::configure(cfg);
    EXPECT_TRUE(telemetry::spansActive());

    telemetry::setEnabled(false);
    EXPECT_FALSE(telemetry::metricsActive());
    EXPECT_FALSE(telemetry::spansActive());
}

TEST(Telemetry, ExportersEmitParseableJson)
{
    setup(true, true);
    static constinit telemetry::Counter ctr{"test.export_ctr"};
    static constinit telemetry::Gauge g{"test.export_gauge"};
    static constinit telemetry::Histogram h{"test.export_hist"};
    ctr.add(11);
    g.set(2.5);
    h.observe(123.0);
    { telemetry::Span span("test.export_span"); }

    std::ostringstream metrics;
    telemetry::writeMetricsJson(metrics);
    const JsonValue m = JsonValue::parse(metrics.str());
    EXPECT_EQ(m.at("counters").at("test.export_ctr").asNumber(),
              11.0);
    EXPECT_EQ(m.at("gauges").at("test.export_gauge").asNumber(),
              2.5);
    EXPECT_EQ(
        m.at("histograms").at("test.export_hist").at("count")
            .asNumber(),
        1.0);

    std::ostringstream trace;
    telemetry::writeChromeTrace(trace);
    const JsonValue t = JsonValue::parse(trace.str());
    const auto &events = t.at("traceEvents").asArray();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].at("name").asString(), "test.export_span");
    EXPECT_EQ(events[0].at("ph").asString(), "X");
    EXPECT_GE(events[0].at("dur").asNumber(), 0.0);
}

} // namespace
