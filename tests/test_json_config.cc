/**
 * @file
 * Tests for the JSON reader and the experiment configuration loader.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace msc {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("3.5").asNumber(), 3.5);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-2e3").asNumber(), -2000.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructures)
{
    const JsonValue v = JsonValue::parse(
        R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}})");
    ASSERT_TRUE(v.isObject());
    const auto &arr = v.at("a").asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_DOUBLE_EQ(arr[1].asNumber(), 2.0);
    EXPECT_TRUE(arr[2].at("b").asBool());
    EXPECT_EQ(v.at("c").at("d").asString(), "x");
    EXPECT_TRUE(v.has("a"));
    EXPECT_FALSE(v.has("z"));
}

TEST(Json, StringEscapes)
{
    const JsonValue v =
        JsonValue::parse(R"("line\nquote\"back\\u:A")");
    EXPECT_EQ(v.asString(), "line\nquote\"back\\u:A");
}

TEST(Json, DefaultingAccessors)
{
    const JsonValue v = JsonValue::parse(R"({"x": 4})");
    EXPECT_DOUBLE_EQ(v.numberOr("x", 1.0), 4.0);
    EXPECT_DOUBLE_EQ(v.numberOr("y", 1.0), 1.0);
    EXPECT_TRUE(v.boolOr("flag", true));
    EXPECT_EQ(v.stringOr("s", "dflt"), "dflt");
}

TEST(Json, SyntaxErrorsAreFatal)
{
    EXPECT_THROW(JsonValue::parse("{"), FatalError);
    EXPECT_THROW(JsonValue::parse("[1,]"), FatalError);
    EXPECT_THROW(JsonValue::parse("tru"), FatalError);
    EXPECT_THROW(JsonValue::parse("1 2"), FatalError);
    EXPECT_THROW(JsonValue::parse("\"open"), FatalError);
    EXPECT_THROW(JsonValue::parse(""), FatalError);
}

TEST(Json, KindMismatchesAreFatal)
{
    const JsonValue v = JsonValue::parse("[1]");
    EXPECT_THROW(v.asObject(), FatalError);
    EXPECT_THROW(v.asNumber(), FatalError);
    EXPECT_THROW(v.at("k"), FatalError);
}

TEST(Config, DefaultsWhenEmpty)
{
    const ExperimentConfig cfg = configFromJson(
        JsonValue::parse("{}"));
    const ExperimentConfig dflt;
    EXPECT_EQ(cfg.accel.banks, dflt.accel.banks);
    EXPECT_EQ(cfg.solver.maxIterations, dflt.solver.maxIterations);
    EXPECT_EQ(cfg.accel.cluster.targetMantissaBits, 53u);
}

TEST(Config, OverridesSelectedFields)
{
    const ExperimentConfig cfg = configFromJson(JsonValue::parse(R"({
        "accelerator": {
            "banks": 64,
            "clustersPerBank": [[256, 4], [64, 8]],
            "cluster": {"schedule": "diagonal",
                        "targetMantissaBits": 24,
                        "anProtect": false},
            "staticPower": 80.0
        },
        "gpu": {"busyPower": 200.0},
        "solver": {"kind": "gmres", "restart": 15,
                   "tolerance": 1e-6}
    })"));
    EXPECT_EQ(cfg.accel.banks, 64u);
    ASSERT_EQ(cfg.accel.clustersPerBank.size(), 2u);
    EXPECT_EQ(cfg.accel.clustersPerBank[0].first, 256u);
    EXPECT_EQ(cfg.accel.blocking.sizes,
              (std::vector<unsigned>{256, 64}));
    EXPECT_EQ(cfg.accel.cluster.schedule, SchedulePolicy::Diagonal);
    EXPECT_EQ(cfg.accel.cluster.targetMantissaBits, 24u);
    EXPECT_FALSE(cfg.accel.cluster.anProtect);
    EXPECT_DOUBLE_EQ(cfg.accel.staticPower, 80.0);
    EXPECT_DOUBLE_EQ(cfg.gpu.busyPower, 200.0);
    EXPECT_EQ(cfg.solverKind, SolverKind::Gmres);
    EXPECT_EQ(cfg.gmresRestart, 15);
    EXPECT_DOUBLE_EQ(cfg.solver.tolerance, 1e-6);
}

TEST(Config, UnknownKeysAreFatal)
{
    EXPECT_THROW(configFromJson(JsonValue::parse(
                     R"({"acelerator": {}})")),
                 FatalError);
    EXPECT_THROW(configFromJson(JsonValue::parse(
                     R"({"accelerator": {"bank": 4}})")),
                 FatalError);
    EXPECT_THROW(configFromJson(JsonValue::parse(
                     R"({"solver": {"kind": "sor"}})")),
                 FatalError);
}

TEST(Config, LoadedConfigRunsAnExperiment)
{
    setLogQuiet(true);
    const ExperimentConfig cfg = configFromJson(JsonValue::parse(R"({
        "solver": {"maxIterations": 50, "tolerance": 1e-4}
    })"));
    TiledParams p;
    p.rows = 2048;
    p.tile = 32;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.2;
    p.seed = 1601;
    const ExperimentResult r =
        runExperiment("cfg", genTiled(p), true, cfg);
    EXPECT_LE(r.solve.iterations, 50);
    EXPECT_GT(r.accelTime, 0.0);
}

} // namespace
} // namespace msc
