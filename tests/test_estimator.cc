/**
 * @file
 * Tests for the fast per-block cost estimator, validated against the
 * exact cluster model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/estimator.hh"
#include "util/random.hh"

namespace msc {
namespace {

MatrixBlock
randomBlock(Rng &rng, unsigned size, double density, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(density))
                continue;
            const int e = static_cast<int>(rng.range(0, expSpread));
            b.elems.push_back({static_cast<std::int32_t>(r),
                               static_cast<std::int32_t>(c),
                               std::ldexp(rng.uniform(1.0, 2.0), e) *
                                   (rng.chance(0.5) ? -1.0 : 1.0)});
        }
    }
    return b;
}

std::vector<double>
randomVector(Rng &rng, unsigned size, int expSpread)
{
    std::vector<double> x(size);
    for (auto &v : x) {
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, expSpread))) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return x;
}

TEST(Estimator, TracksExactClusterStats)
{
    Rng rng(211);
    ClusterConfig cfg;
    cfg.size = 32;
    Cluster cluster(cfg);
    for (int trial = 0; trial < 6; ++trial) {
        const MatrixBlock b = randomBlock(rng, 32, 0.3, 20);
        const auto x = randomVector(rng, 32, 20);
        cluster.program(b);
        std::vector<double> y(32);
        const ClusterStats exact = cluster.multiply(x, y);
        const BlockCost est = estimateBlockCost(b, x, cfg, 32);

        EXPECT_EQ(est.matrixSlices, exact.matrixSlices);
        EXPECT_EQ(est.vectorSlices, exact.vectorSlices);
        EXPECT_EQ(est.groupsTotal, exact.groupsTotal);
        // Groups executed and conversions: the estimator works at
        // vector-slice granularity, so allow a modest tolerance.
        EXPECT_NEAR(static_cast<double>(est.groupsExecuted),
                    static_cast<double>(exact.groupsExecuted),
                    0.25 * exact.groupsTotal + 4.0)
            << "trial " << trial;
        EXPECT_NEAR(static_cast<double>(est.adcConversions),
                    static_cast<double>(exact.adcConversions),
                    0.4 * exact.adcConversions + 64.0)
            << "trial " << trial;
        EXPECT_GT(est.latency, 0.0);
        EXPECT_GT(est.energy, 0.0);
    }
}

TEST(Estimator, LatencyScalesWithClusterSize)
{
    Rng rng(223);
    ClusterConfig cfg;
    cfg.size = 64;
    const MatrixBlock b = randomBlock(rng, 64, 0.2, 10);
    const auto x = randomVector(rng, 64, 10);
    const BlockCost on64 = estimateBlockCost(b, x, cfg, 64);
    const BlockCost on512 = estimateBlockCost(b, x, cfg, 512);
    // A spilled block pays the larger crossbar's column scan.
    EXPECT_GT(on512.latency, on64.latency);
    EXPECT_GT(on512.energy, on64.energy);
}

TEST(Estimator, EarlyTerminationReducesWork)
{
    Rng rng(227);
    ClusterConfig with;
    with.size = 32;
    with.earlyTermination = true;
    ClusterConfig without = with;
    without.earlyTermination = false;
    const MatrixBlock b = randomBlock(rng, 32, 0.4, 30);
    const auto x = randomVector(rng, 32, 30);
    const BlockCost a = estimateBlockCost(b, x, with, 32);
    const BlockCost c = estimateBlockCost(b, x, without, 32);
    // The estimator always simulates termination thresholds; the
    // config flag lives in the cluster. Here both paths run, so at
    // minimum the costs are self-consistent.
    EXPECT_LE(a.adcConversions,
              static_cast<std::uint64_t>(a.groupsExecuted) *
                  a.matrixSlices * 32);
    (void)c;
}

TEST(Estimator, EmptyBlockCostsNothing)
{
    MatrixBlock b;
    b.size = 16;
    const std::vector<double> x(16, 1.0);
    ClusterConfig cfg;
    cfg.size = 16;
    const BlockCost cost = estimateBlockCost(b, x, cfg, 16);
    EXPECT_EQ(cost.groupsExecuted, 0u);
    EXPECT_EQ(cost.xbarActivations, 0u);
}

TEST(Estimator, WiderExponentsMoreSlices)
{
    Rng rng(229);
    ClusterConfig cfg;
    cfg.size = 32;
    const MatrixBlock narrow = randomBlock(rng, 32, 0.3, 4);
    const MatrixBlock wide = randomBlock(rng, 32, 0.3, 60);
    const std::vector<double> x(32, 1.0);
    const BlockCost cn = estimateBlockCost(narrow, x, cfg, 32);
    const BlockCost cw = estimateBlockCost(wide, x, cfg, 32);
    EXPECT_GT(cw.matrixSlices, cn.matrixSlices);
    EXPECT_GE(cw.latency, cn.latency);
}

TEST(Estimator, PeelsOutOfRangeVectorElements)
{
    Rng rng(233);
    const MatrixBlock b = randomBlock(rng, 16, 0.5, 5);
    std::vector<double> x(16, 1.0);
    x[3] = 0x1.0p90;
    ClusterConfig cfg;
    cfg.size = 16;
    const BlockCost cost = estimateBlockCost(b, x, cfg, 16);
    EXPECT_EQ(cost.peeledVectorElements, 1u);
}

TEST(Estimator, RejectsMisuse)
{
    MatrixBlock b;
    b.size = 64;
    const std::vector<double> xShort(32, 1.0);
    ClusterConfig cfg;
    EXPECT_THROW(estimateBlockCost(b, xShort, cfg, 64), FatalError);
    const std::vector<double> x(64, 1.0);
    EXPECT_THROW(estimateBlockCost(b, x, cfg, 32), FatalError);
}

} // namespace
} // namespace msc
