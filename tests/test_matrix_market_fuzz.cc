/**
 * @file
 * Fuzz-style robustness tests for the Matrix Market reader: every
 * malformed input -- truncated files, bad banners, lying headers,
 * out-of-range indices, garbage bytes -- must surface as a clean
 * FatalError, never UB, a wild allocation, or a crash. The
 * randomized sections run fine under the `sanitize` preset; seeds
 * are fixed so failures reproduce deterministically.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <vector>

#include "sparse/gen.hh"
#include "sparse/matrix_market.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace msc;

Csr
parse(const std::string &text)
{
    std::istringstream in(text);
    return readMatrixMarket(in);
}

void
expectRejected(const std::string &text)
{
    EXPECT_THROW(parse(text), FatalError) << "input:\n" << text;
}

// --- banner / header edges -----------------------------------------

TEST(MatrixMarketFuzz, RejectsEmptyAndBannerlessInput)
{
    expectRejected("");
    expectRejected("\n");
    expectRejected("2 2 1\n1 1 1.0\n");
    expectRejected("%%MatrixMarke matrix coordinate real general\n"
                   "1 1 1\n1 1 1.0\n");
    // Case matters for the tag itself.
    expectRejected("%%matrixmarket matrix coordinate real general\n"
                   "1 1 1\n1 1 1.0\n");
}

TEST(MatrixMarketFuzz, RejectsUnsupportedFormatsFieldsSymmetries)
{
    expectRejected("%%MatrixMarket matrix array real general\n"
                   "2 2\n1.0\n2.0\n3.0\n4.0\n");
    expectRejected("%%MatrixMarket vector coordinate real general\n"
                   "1 1 1\n1 1 1.0\n");
    expectRejected("%%MatrixMarket matrix coordinate complex general\n"
                   "1 1 1\n1 1 1.0 0.0\n");
    expectRejected("%%MatrixMarket matrix coordinate real hermitian\n"
                   "1 1 1\n1 1 1.0\n");
    // Missing banner words read as empty strings, not stale tokens.
    expectRejected("%%MatrixMarket matrix coordinate\n"
                   "1 1 1\n1 1 1.0\n");
    expectRejected("%%MatrixMarket\n1 1 1\n1 1 1.0\n");
}

TEST(MatrixMarketFuzz, BannerWordsAreCaseInsensitive)
{
    const Csr m =
        parse("%%MatrixMarket MATRIX Coordinate REAL General\n"
              "2 2 2\n1 1 3.0\n2 2 4.0\n");
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.nnz(), 2u);
}

// --- size-line edges -----------------------------------------------

TEST(MatrixMarketFuzz, RejectsBadSizeLines)
{
    const std::string banner =
        "%%MatrixMarket matrix coordinate real general\n";
    expectRejected(banner);                    // EOF before sizes
    expectRejected(banner + "% only comments\n");
    expectRejected(banner + "abc def ghi\n");
    expectRejected(banner + "0 2 1\n1 1 1.0\n");
    expectRejected(banner + "2 0 1\n1 1 1.0\n");
    expectRejected(banner + "-2 2 1\n1 1 1.0\n");
    expectRejected(banner + "2 2 -1\n1 1 1.0\n");
    // int32 overflow in the dimensions must be caught, not wrapped.
    expectRejected(banner + "4294967297 4294967297 1\n1 1 1.0\n");
}

TEST(MatrixMarketFuzz, HostileNnzDoesNotPreallocate)
{
    // A lying header nnz (9e18) must fail as a truncation error,
    // not die inside vector::reserve.
    expectRejected("%%MatrixMarket matrix coordinate real general\n"
                   "4 4 9000000000000000000\n1 1 1.0\n");
}

// --- entry-list edges ----------------------------------------------

TEST(MatrixMarketFuzz, RejectsTruncatedAndMalformedEntries)
{
    const std::string head =
        "%%MatrixMarket matrix coordinate real general\n3 3 3\n";
    expectRejected(head);                        // no entries at all
    expectRejected(head + "1 1 1.0\n2 2 2.0\n"); // one short
    expectRejected(head + "1 1 1.0\n2 2\n3 3 3.0\n");  // missing v
    expectRejected(head + "1 1 1.0\nx y z\n3 3 3.0\n");
    expectRejected(head + "1\n2 2 2.0\n3 3 3.0\n");
}

TEST(MatrixMarketFuzz, RejectsOutOfRangeIndices)
{
    const std::string head =
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n";
    expectRejected(head + "0 1 1.0\n");   // 1-based: 0 is invalid
    expectRejected(head + "1 0 1.0\n");
    expectRejected(head + "4 1 1.0\n");
    expectRejected(head + "1 4 1.0\n");
    expectRejected(head + "-1 1 1.0\n");
    // Huge indices must not wrap through the int32 cast back into
    // range (4294967297 - 1 wraps to 0 in 32 bits).
    expectRejected(head + "4294967297 1 1.0\n");
    expectRejected(head + "1 4294967297 1.0\n");
}

TEST(MatrixMarketFuzz, CommentsAndBlanksInsideEntriesAreSkipped)
{
    const Csr m =
        parse("%%MatrixMarket matrix coordinate real general\n"
              "% leading comment\n"
              "\n"
              "2 2 2\n"
              "1 1 5.0\n"
              "% interior comment\n"
              "\n"
              "2 2 6.0\n");
    EXPECT_EQ(m.rows(), 2);
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_DOUBLE_EQ(m.rowVals(0)[0], 5.0);
    EXPECT_DOUBLE_EQ(m.rowVals(1)[0], 6.0);
}

TEST(MatrixMarketFuzz, PatternAndSymmetryVariantsExpandCorrectly)
{
    const Csr pat =
        parse("%%MatrixMarket matrix coordinate pattern general\n"
              "2 2 2\n1 2\n2 1\n");
    ASSERT_EQ(pat.nnz(), 2u);
    EXPECT_DOUBLE_EQ(pat.rowVals(0)[0], 1.0);

    const Csr sym =
        parse("%%MatrixMarket matrix coordinate real symmetric\n"
              "3 3 2\n2 1 4.0\n3 3 9.0\n");
    ASSERT_EQ(sym.nnz(), 3u); // off-diagonal mirrored, diag not
    EXPECT_DOUBLE_EQ(sym.rowVals(0)[0], 4.0);
    EXPECT_DOUBLE_EQ(sym.rowVals(1)[0], 4.0);

    const Csr skew =
        parse("%%MatrixMarket matrix coordinate real skew-symmetric\n"
              "2 2 1\n2 1 4.0\n");
    ASSERT_EQ(skew.nnz(), 2u);
    EXPECT_DOUBLE_EQ(skew.rowVals(0)[0], -4.0);
    EXPECT_DOUBLE_EQ(skew.rowVals(1)[0], 4.0);
}

TEST(MatrixMarketFuzz, RejectsSkewSymmetricPattern)
{
    // The MM spec restricts pattern matrices to general/symmetric: a
    // skew-symmetric pattern has no values to negate, and inventing
    // -1.0 mirrors would fabricate data.
    expectRejected(
        "%%MatrixMarket matrix coordinate pattern skew-symmetric\n"
        "2 2 1\n2 1\n");
}

TEST(MatrixMarketFuzz, RejectsNonzeroSkewDiagonal)
{
    // Skew-symmetry forces a_ii == -a_ii == 0; a nonzero explicit
    // diagonal contradicts the declared symmetry.
    expectRejected(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "3 3 2\n2 1 4.0\n2 2 1.0\n");
    // An explicit zero diagonal entry is redundant but legal.
    const Csr ok =
        parse("%%MatrixMarket matrix coordinate real skew-symmetric\n"
              "3 3 2\n2 1 4.0\n2 2 0.0\n");
    EXPECT_EQ(ok.rows(), 3);
    std::vector<double> diag(3, -1.0);
    for (std::int32_t r = 0; r < 3; ++r) {
        const auto cols = ok.rowCols(r);
        const auto vals = ok.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == r) {
                EXPECT_EQ(vals[k], 0.0);
            }
        }
    }
}

TEST(MatrixMarketFuzz, SkewSymmetricReadRoundTripsThroughTranspose)
{
    // A skew-symmetric read must produce A with A^T == -A, term by
    // term: spmvTranspose accumulates the exact negations of the
    // spmv products in the same order, so y^T == -y bitwise.
    const Csr a =
        parse("%%MatrixMarket matrix coordinate real skew-symmetric\n"
              "4 4 4\n"
              "2 1 4.0\n"
              "3 1 -0.125\n"
              "4 2 2.5\n"
              "4 3 -3.0\n");
    ASSERT_EQ(a.nnz(), 8u); // every entry mirrored with flipped sign
    EXPECT_FALSE(a.isSymmetric());

    const std::vector<double> x = {1.0, -2.0, 0.75, 3.0};
    std::vector<double> y(4), yt(4);
    a.spmv(x, y);
    a.spmvTranspose(x, yt);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(yt[i], -y[i]) << "component " << i;

    // The mirrored pairs really carry opposite values.
    const Csr at = a.transpose();
    for (std::int32_t r = 0; r < 4; ++r) {
        const auto ac = a.rowCols(r), tc = at.rowCols(r);
        const auto av = a.rowVals(r), tv = at.rowVals(r);
        ASSERT_EQ(ac.size(), tc.size());
        for (std::size_t k = 0; k < ac.size(); ++k) {
            EXPECT_EQ(ac[k], tc[k]);
            EXPECT_EQ(av[k], -tv[k]);
        }
    }
}

TEST(MatrixMarketFuzz, WriteReadRoundTripsExactly)
{
    TiledParams gen;
    gen.rows = 48;
    gen.tile = 8;
    gen.tileDensity = 0.4;
    gen.spd = true;
    gen.seed = 11;
    const Csr m = genTiled(gen);

    std::stringstream buf;
    writeMatrixMarket(m, buf);
    const Csr back = readMatrixMarket(buf);

    ASSERT_EQ(back.rows(), m.rows());
    ASSERT_EQ(back.cols(), m.cols());
    ASSERT_EQ(back.nnz(), m.nnz());
    for (std::int32_t r = 0; r < m.rows(); ++r) {
        const auto ac = m.rowCols(r), bc = back.rowCols(r);
        const auto av = m.rowVals(r), bv = back.rowVals(r);
        ASSERT_EQ(ac.size(), bc.size()) << "row " << r;
        for (std::size_t k = 0; k < ac.size(); ++k) {
            EXPECT_EQ(ac[k], bc[k]);
            EXPECT_EQ(av[k], bv[k]); // %.17g is lossless for FP64
        }
    }
}

// --- line-ending / encoding hardening ------------------------------

TEST(MatrixMarketFuzz, CrlfLineEndingsParseIdentically)
{
    // Windows-written files: every '\n' becomes "\r\n". The parsed
    // matrix must be bit-identical to the Unix version.
    const std::string unix_ =
        "%%MatrixMarket matrix coordinate real general\n"
        "% comment\n"
        "2 2 2\n"
        "1 1 5.0\n"
        "2 2 6.0\n";
    std::string dos;
    for (char c : unix_) {
        if (c == '\n')
            dos += '\r';
        dos += c;
    }
    const Csr a = parse(unix_);
    const Csr b = parse(dos);
    ASSERT_EQ(b.rows(), a.rows());
    ASSERT_EQ(b.nnz(), a.nnz());
    for (std::int32_t r = 0; r < a.rows(); ++r) {
        const auto av = a.rowVals(r), bv = b.rowVals(r);
        ASSERT_EQ(av.size(), bv.size());
        for (std::size_t k = 0; k < av.size(); ++k)
            EXPECT_EQ(av[k], bv[k]);
    }
}

TEST(MatrixMarketFuzz, Utf8BomBeforeBannerIsStripped)
{
    const Csr m =
        parse("\xef\xbb\xbf%%MatrixMarket matrix coordinate real "
              "general\n2 2 1\n1 1 3.0\n");
    EXPECT_EQ(m.rows(), 2);
    ASSERT_EQ(m.nnz(), 1u);
    EXPECT_DOUBLE_EQ(m.rowVals(0)[0], 3.0);
    // A BOM anywhere else is still garbage.
    expectRejected("%%MatrixMarket matrix coordinate real general\n"
                   "\xef\xbb\xbf" "2 2 1\n1 1 3.0\n");
}

TEST(MatrixMarketFuzz, TrailingGarbageAfterLastEntryIsRejected)
{
    const std::string head =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n1 1 5.0\n2 2 6.0\n";
    // Blank lines and comments after the last entry stay legal.
    EXPECT_EQ(parse(head + "\n\n% trailing comment\n").nnz(), 2u);
    // Data-looking trailers are silent-truncation hazards: a file
    // whose header lies about its entry count must not half-parse.
    expectRejected(head + "1 2 7.0\n");
    expectRejected(head + "garbage\n");
    expectRejected(head + "% fine\nbut then this\n");
}

// --- structured error reasons --------------------------------------

using Reason = MatrixMarketError::Reason;

/** Parse @p text expecting rejection; return the structured reason
 *  (and parse progress via @p entries). */
Reason
reasonOf(const std::string &text, std::uint64_t *entries = nullptr)
{
    try {
        parse(text);
    } catch (const MatrixMarketError &e) {
        if (entries != nullptr)
            *entries = e.entriesRead();
        return e.reason();
    }
    ADD_FAILURE() << "input unexpectedly accepted:\n" << text;
    return Reason::EmptyInput;
}

TEST(MatrixMarketFuzz, ReasonsDistinguishFailureClasses)
{
    EXPECT_EQ(reasonOf(""), Reason::EmptyInput);
    EXPECT_EQ(reasonOf("2 2 1\n1 1 1.0\n"), Reason::BadBanner);
    EXPECT_EQ(reasonOf("%%MatrixMarket matrix array real general\n"
                       "2 2\n1.0\n"),
              Reason::Unsupported);
    const std::string banner =
        "%%MatrixMarket matrix coordinate real general\n";
    EXPECT_EQ(reasonOf(banner), Reason::Truncated); // no size line
    EXPECT_EQ(reasonOf(banner + "abc def ghi\n"), Reason::BadSize);
    EXPECT_EQ(reasonOf(banner + "3 3 1\nx y z\n"), Reason::BadEntry);
    EXPECT_EQ(reasonOf(banner + "3 3 1\n7 1 1.0\n"),
              Reason::BadEntry);
    // Trailing garbage reports as BadEntry with full progress: all
    // declared entries parsed, then the trailer broke the contract.
    std::uint64_t entries = 0;
    EXPECT_EQ(reasonOf(banner + "2 2 1\n1 1 1.0\njunk\n", &entries),
              Reason::BadEntry);
    EXPECT_EQ(entries, 1u);
    EXPECT_THROW(readMatrixMarket("/nonexistent/file.mtx"),
                 MatrixMarketError);
}

TEST(MatrixMarketFuzz, TruncationCarriesReasonAndProgress)
{
    // EOF mid-entry: structured Truncated with how far we got, so a
    // caller retrying a partial download can report progress.
    const std::string head =
        "%%MatrixMarket matrix coordinate real general\n3 3 3\n";
    std::uint64_t entries = ~0ULL;
    EXPECT_EQ(reasonOf(head + "1 1 1.0\n2 2 2.0\n", &entries),
              Reason::Truncated);
    EXPECT_EQ(entries, 2u);
    EXPECT_EQ(reasonOf(head, &entries), Reason::Truncated);
    EXPECT_EQ(entries, 0u);
    // Malformed entry also reports where it happened.
    EXPECT_EQ(reasonOf(head + "1 1 1.0\nx y z\n3 3 3.0\n",
                       &entries),
              Reason::BadEntry);
    EXPECT_EQ(entries, 1u);
}

/** Streambuf that serves a fixed prefix, then fails like a dying
 *  device: istream turns the underflow throw into badbit. */
class FlakyBuf : public std::streambuf
{
  public:
    explicit FlakyBuf(std::string head) : data(std::move(head))
    {
        setg(data.data(), data.data(),
             data.data() + data.size());
    }

  protected:
    int_type
    underflow() override
    {
        throw std::runtime_error("injected I/O failure");
    }

  private:
    std::string data;
};

TEST(MatrixMarketFuzz, UnreadableStreamIsAStreamErrorNotTruncation)
{
    // Failure on the very first read.
    {
        FlakyBuf buf("");
        std::istream in(&buf);
        try {
            readMatrixMarket(in);
            FAIL() << "unreadable stream accepted";
        } catch (const MatrixMarketError &e) {
            EXPECT_EQ(e.reason(), Reason::StreamError);
        }
    }
    // Failure mid-entry: must NOT be misreported as a truncated
    // (i.e. merely incomplete) file, and must carry progress.
    {
        FlakyBuf buf(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 3\n"
            "1 1 1.0\n"
            "2 2 2.0\n");
        std::istream in(&buf);
        try {
            readMatrixMarket(in);
            FAIL() << "failing stream accepted";
        } catch (const MatrixMarketError &e) {
            EXPECT_EQ(e.reason(), Reason::StreamError);
            EXPECT_EQ(e.entriesRead(), 2u);
        }
    }
}

// --- randomized garbage --------------------------------------------

/** Every input, however mangled, must end in a Csr or a FatalError;
 *  anything else (crash, sanitizer report, wild alloc) is a bug. */
void
mustNotCrash(const std::string &text)
{
    try {
        const Csr m = parse(text);
        EXPECT_GE(m.rows(), 0);
        EXPECT_GE(m.cols(), 0);
    } catch (const FatalError &) {
        // Clean rejection: the expected outcome for garbage.
    }
}

TEST(MatrixMarketFuzz, RandomByteNoiseNeverCrashes)
{
    Rng rng(0xf022001);
    const char alphabet[] =
        "0123456789 .-+eE%\n\tMatrixmarket coordinate";
    for (int round = 0; round < 300; ++round) {
        std::string s;
        const std::size_t len = rng.below(200);
        for (std::size_t i = 0; i < len; ++i)
            s += alphabet[rng.below(sizeof(alphabet) - 1)];
        mustNotCrash(s);
        mustNotCrash(
            "%%MatrixMarket matrix coordinate real general\n" + s);
    }
}

TEST(MatrixMarketFuzz, MutatedValidFilesNeverCrash)
{
    TiledParams gen;
    gen.rows = 24;
    gen.tile = 8;
    gen.tileDensity = 0.5;
    gen.seed = 3;
    std::stringstream buf;
    writeMatrixMarket(genTiled(gen), buf);
    const std::string base = buf.str();

    Rng rng(0xf022002);
    for (int round = 0; round < 300; ++round) {
        std::string s = base;
        // A handful of point mutations: flip, delete, or insert.
        const int edits = 1 + static_cast<int>(rng.below(8));
        for (int e = 0; e < edits && !s.empty(); ++e) {
            const std::size_t pos = rng.below(s.size());
            switch (rng.below(3)) {
              case 0:
                s[pos] = static_cast<char>(32 + rng.below(96));
                break;
              case 1:
                s.erase(pos, 1 + rng.below(16));
                break;
              default:
                s.insert(pos, 1 + rng.below(4),
                         static_cast<char>(32 + rng.below(96)));
                break;
            }
        }
        mustNotCrash(s);
        // Truncation at every kind of boundary.
        mustNotCrash(s.substr(0, rng.below(s.size() + 1)));
    }
}

} // namespace
