/**
 * @file
 * Tests for the synthetic matrix generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fixedpoint/align.hh"
#include "sparse/gen.hh"
#include "sparse/stats.hh"
#include "util/random.hh"

namespace msc {
namespace {

TEST(FirstPrimes, KnownPrefix)
{
    const auto p = firstPrimes(10);
    const std::vector<std::int64_t> expect{2, 3, 5, 7, 11, 13, 17, 19,
                                           23, 29};
    EXPECT_EQ(p, expect);
}

TEST(FirstPrimes, LargeCount)
{
    const auto p = firstPrimes(5000);
    EXPECT_EQ(p.size(), 5000u);
    EXPECT_EQ(p.back(), 48611); // the 5000th prime
}

TEST(Trefethen, StructureMatchesDefinition)
{
    const std::int32_t n = 64;
    const Csr m = genTrefethen(n);
    EXPECT_TRUE(m.isSymmetric());
    const auto primes = firstPrimes(n);
    for (std::int32_t i = 0; i < n; ++i) {
        bool sawDiag = false;
        const auto cols = m.rowCols(i);
        const auto vals = m.rowVals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            const std::int32_t d = std::abs(cols[k] - i);
            if (d == 0) {
                sawDiag = true;
                EXPECT_EQ(vals[k], static_cast<double>(
                    primes[static_cast<std::size_t>(i)]));
            } else {
                // |i-j| must be a power of two and the value 1.
                EXPECT_EQ(d & (d - 1), 0) << "offset " << d;
                EXPECT_EQ(vals[k], 1.0);
            }
        }
        EXPECT_TRUE(sawDiag);
    }
}

TEST(Trefethen, IsDiagonallyDominantEnoughForCg)
{
    // Not strictly diagonally dominant in the first rows, but the
    // diagonal grows with primes; check positive definiteness via a
    // few random Rayleigh quotients.
    const Csr m = genTrefethen(200);
    Rng rng(67);
    for (int t = 0; t < 10; ++t) {
        std::vector<double> x(200), y(200);
        for (auto &v : x)
            v = rng.uniform(-1, 1);
        m.spmv(x, y);
        EXPECT_GT(dot(x, y), 0.0);
    }
}

TEST(GenTiled, FullDiagonalAlwaysPresent)
{
    TiledParams p;
    p.rows = 300;
    p.tile = 32;
    p.seed = 3;
    const Csr m = genTiled(p);
    for (std::int32_t r = 0; r < p.rows; ++r) {
        bool diag = false;
        for (std::int32_t c : m.rowCols(r))
            diag |= (c == r);
        EXPECT_TRUE(diag) << "row " << r;
    }
}

TEST(GenTiled, SymmetricPatternIsSymmetric)
{
    TiledParams p;
    p.rows = 256;
    p.tile = 32;
    p.diagTiles = 2;
    p.scatterPerRow = 1.0;
    p.seed = 11;
    p.symmetricPattern = true;
    const Csr m = genTiled(p);
    EXPECT_TRUE(m.isSymmetric());
}

TEST(GenTiled, SpdIsPositiveDefinite)
{
    TiledParams p;
    p.rows = 300;
    p.tile = 24;
    p.spd = true;
    p.seed = 17;
    const Csr m = genTiled(p);
    EXPECT_TRUE(m.isSymmetric());
    Rng rng(71);
    for (int t = 0; t < 20; ++t) {
        std::vector<double> x(static_cast<std::size_t>(p.rows));
        std::vector<double> y(x.size());
        for (auto &v : x)
            v = rng.uniform(-1, 1);
        m.spmv(x, y);
        EXPECT_GT(dot(x, y), 0.0);
    }
}

TEST(GenTiled, DensityRespondsToParameters)
{
    TiledParams lo;
    lo.rows = 512;
    lo.tile = 32;
    lo.tileDensity = 0.2;
    lo.seed = 5;
    TiledParams hi = lo;
    hi.tileDensity = 0.9;
    EXPECT_GT(genTiled(hi).nnz(), genTiled(lo).nnz() * 2);
}

TEST(GenTiled, ScatterAddsOffBandEntries)
{
    TiledParams p;
    p.rows = 600;
    p.tile = 30;
    p.diagTiles = 1;
    p.tileSpread = 0;
    p.scatterPerRow = 4.0;
    p.seed = 23;
    const Csr m = genTiled(p);
    const MatrixStats s = computeStats(m);
    // Scatter covers the full row span, so bandwidth approaches n.
    EXPECT_GT(s.bandwidth, 300);
}

TEST(GenTiled, Deterministic)
{
    TiledParams p;
    p.rows = 200;
    p.tile = 16;
    p.scatterPerRow = 2.0;
    p.seed = 99;
    const Csr a = genTiled(p);
    const Csr b = genTiled(p);
    EXPECT_EQ(a.nnz(), b.nnz());
    EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                           b.values().begin()));
}

TEST(GenTiled, SeedChangesPattern)
{
    TiledParams p;
    p.rows = 200;
    p.tile = 16;
    p.tileDensity = 0.4;
    p.seed = 1;
    TiledParams q = p;
    q.seed = 2;
    const Csr a = genTiled(p);
    const Csr b = genTiled(q);
    // Same statistical structure, different realization.
    EXPECT_FALSE(std::equal(a.colIndex().begin(), a.colIndex().end(),
                            b.colIndex().begin(),  b.colIndex().end()));
}

TEST(GenTiled, ExponentSigmaWidensValueRange)
{
    TiledParams narrow;
    narrow.rows = 400;
    narrow.tile = 32;
    narrow.seed = 31;
    narrow.values.tileExpSigma = 0.5;
    narrow.values.elemExpSigma = 0.5;
    TiledParams wide = narrow;
    wide.values.tileExpSigma = 12.0;
    wide.values.elemExpSigma = 6.0;
    const MatrixStats sn = computeStats(genTiled(narrow));
    const MatrixStats sw = computeStats(genTiled(wide));
    EXPECT_GT(sw.expRange, sn.expRange);
}

TEST(GenTiled, OutliersCreateExtremeExponents)
{
    TiledParams p;
    p.rows = 400;
    p.tile = 32;
    p.seed = 37;
    p.values.outlierProb = 0.02;
    p.values.outlierMag = 90.0;
    const MatrixStats s = computeStats(genTiled(p));
    EXPECT_GT(s.expRange, fxp::maxExpRange);
}

TEST(GenTiled, RejectsBadParams)
{
    TiledParams p;
    p.rows = 0;
    EXPECT_THROW(genTiled(p), FatalError);
    TiledParams q;
    q.spd = true;
    q.symmetricPattern = false;
    EXPECT_THROW(genTiled(q), FatalError);
}

} // namespace
} // namespace msc
