/**
 * @file
 * Integration tests for the end-to-end experiment driver.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"

namespace msc {
namespace {

class ExperimentTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
};

TEST_F(ExperimentTest, BandedSpdSystemBeatsGpu)
{
    TiledParams p;
    p.rows = 8192;
    p.tile = 48;
    p.tileDensity = 0.3;
    p.scatterPerRow = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.02;
    p.seed = 501;
    const Csr m = genTiled(p);
    const ExperimentResult r = runExperiment("banded", m, true);
    EXPECT_TRUE(r.solve.converged);
    EXPECT_FALSE(r.gpuFallback);
    EXPECT_GT(r.speedup(), 1.0);
    EXPECT_GT(r.energyRatio(), 1.0);
    EXPECT_GT(r.accelTime, 0.0);
    EXPECT_GT(r.gpuTime, 0.0);
    EXPECT_LT(r.setupOverhead(), 1.0);
}

TEST_F(ExperimentTest, ScatterSystemRoutesToGpu)
{
    TiledParams p;
    p.rows = 8192;
    p.diagTiles = 0;
    p.scatterPerRow = 3.0;
    p.symmetricPattern = false;
    p.diagDominance = 0.1;
    p.seed = 503;
    const Csr m = genTiled(p);
    const ExperimentResult r = runExperiment("scatter", m, false);
    EXPECT_TRUE(r.gpuFallback);
    // The fallback costs only the preprocessing: within ~15% of the
    // plain GPU solve (the paper reports < 3% at their iteration
    // counts).
    EXPECT_GT(r.speedup(), 0.8);
    EXPECT_LE(r.speedup(), 1.0);
}

TEST_F(ExperimentTest, UsesRequestedSolver)
{
    TiledParams p;
    p.rows = 4096;
    p.tile = 32;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = 507;
    const Csr m = genTiled(p);
    const ExperimentResult cg = runExperiment("m", m, true);
    const ExperimentResult bi = runExperiment("m", m, false);
    EXPECT_TRUE(cg.usedCg);
    EXPECT_FALSE(bi.usedCg);
    // BiCG-STAB does two SpMVs per iteration.
    EXPECT_GT(bi.solve.spmvCalls, cg.solve.spmvCalls / 2);
}

TEST_F(ExperimentTest, SolverKindOverride)
{
    TiledParams p;
    p.rows = 4096;
    p.tile = 32;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = 511;
    const Csr m = genTiled(p);
    ExperimentConfig cfg;
    cfg.solverKind = SolverKind::Gmres;
    const ExperimentResult r = runExperiment("m", m, true, cfg);
    EXPECT_FALSE(r.usedCg);
    EXPECT_TRUE(r.solve.converged);
    cfg.solverKind = SolverKind::BiCgStab;
    const ExperimentResult r2 = runExperiment("m", m, true, cfg);
    EXPECT_FALSE(r2.usedCg);
    EXPECT_TRUE(r2.solve.converged);
}

TEST_F(ExperimentTest, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geometricMean({5.0}), 5.0);
    EXPECT_EQ(geometricMean({}), 0.0);
    EXPECT_THROW(geometricMean({1.0, -1.0}), FatalError);
}

TEST_F(ExperimentTest, SetupOverheadIncludesWriteAndPreprocess)
{
    TiledParams p;
    p.rows = 4096;
    p.tile = 48;
    p.tileDensity = 0.35;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = 509;
    const Csr m = genTiled(p);
    const ExperimentResult r = runExperiment("m", m, true);
    ASSERT_FALSE(r.gpuFallback);
    EXPECT_GT(r.programTime, 0.0);
    EXPECT_GT(r.preprocessTime, 0.0);
    EXPECT_NEAR(r.setupOverhead(),
                (r.programTime + r.preprocessTime) / r.accelTime,
                1e-12);
}

} // namespace
} // namespace msc
