/**
 * @file
 * Tests for the crossbar analytic models and the functional binary
 * crossbar (CIC, headstart, device reads).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"
#include "xbar/crossbar.hh"
#include "xbar/model.hh"

namespace msc {
namespace {

TEST(XbarModel, Table3LatencyExact)
{
    // Latency = N cycles at 1.2 GHz (Table III: 53.3/107/213/427 ns).
    EXPECT_NEAR(XbarModel(64).opLatency() * 1e9, 53.3, 0.1);
    EXPECT_NEAR(XbarModel(128).opLatency() * 1e9, 106.7, 0.5);
    EXPECT_NEAR(XbarModel(256).opLatency() * 1e9, 213.3, 0.5);
    EXPECT_NEAR(XbarModel(512).opLatency() * 1e9, 426.7, 0.5);
}

TEST(XbarModel, Table3EnergyWithinTwoPercent)
{
    const double paper[][2] = {
        {64, 28.0}, {128, 65.2}, {256, 150.0}, {512, 342.0}};
    for (const auto &row : paper) {
        const XbarModel m(static_cast<unsigned>(row[0]));
        EXPECT_NEAR(m.opEnergy() * 1e12, row[1], 0.02 * row[1])
            << "N=" << row[0];
    }
}

TEST(XbarModel, Table3AreaWithinSevenPercent)
{
    const double paper[][2] = {{64, 0.00078},
                               {128, 0.00103},
                               {256, 0.00162},
                               {512, 0.00352}};
    for (const auto &row : paper) {
        const XbarModel m(static_cast<unsigned>(row[0]));
        EXPECT_NEAR(m.area(), row[1], 0.07 * row[1]) << row[0];
    }
}

TEST(XbarModel, CicSavesOneAdcBit)
{
    XbarModelParams prm;
    const XbarModel with(512, prm, true);
    const XbarModel without(512, prm, false);
    EXPECT_EQ(with.adcResolutionBits(), 9u);
    EXPECT_EQ(without.adcResolutionBits(), 10u);
}

TEST(XbarModel, HeadstartReducesConversionEnergy)
{
    const XbarModel m(512);
    const double full =
        m.conversionEnergy(m.adcResolutionBits());
    for (unsigned start = 1; start < m.adcResolutionBits();
         ++start) {
        EXPECT_LT(m.conversionEnergy(start), full) << start;
        // But never below the static floor (20%).
        EXPECT_GE(m.conversionEnergy(start), 0.2 * full * 0.99);
    }
    // Headstart above resolution = no saving.
    EXPECT_EQ(m.conversionEnergy(12), full);
}

TEST(XbarModel, EnergySplitsSumToTotal)
{
    for (unsigned n : {64u, 128u, 256u, 512u}) {
        const XbarModel m(n);
        EXPECT_NEAR(m.adcOpEnergy() + m.arrayOpEnergy(),
                    m.opEnergy(), 1e-18)
            << n;
    }
}

TEST(XbarModel, ProgramCosts)
{
    const XbarModel m(512);
    // Row-parallel writes: N * 50.88 ns.
    EXPECT_NEAR(m.programTime() * 1e6, 512 * 50.88e-3, 0.1);
    EXPECT_DOUBLE_EQ(m.programEnergy(1000), 1000 * 3.91e-9);
}

TEST(XbarModel, RejectsBadSizes)
{
    EXPECT_THROW(XbarModel(0), FatalError);
    EXPECT_THROW(XbarModel(100), FatalError); // not a power of two
}

TEST(BinaryCrossbar, SetGetAndDot)
{
    BinaryCrossbar x(8, 4);
    x.set(0, 0);
    x.set(3, 0);
    x.set(5, 0);
    EXPECT_TRUE(x.get(3, 0));
    EXPECT_FALSE(x.get(2, 0));
    BitVec input(8);
    input.set(0);
    input.set(3);
    input.set(6);
    EXPECT_EQ(x.readColumn(0, input), 2); // rows 0 and 3 intersect
    EXPECT_EQ(x.readColumn(1, input), 0);
}

TEST(BinaryCrossbar, CicInvertsDenseColumns)
{
    BinaryCrossbar x(8, 3);
    // Column 0: 6 of 8 ones -> inverted. Column 1: 2 ones -> kept.
    // Column 2: exactly 4 -> corner case.
    for (unsigned r = 0; r < 6; ++r)
        x.set(r, 0);
    x.set(0, 1);
    x.set(1, 1);
    for (unsigned r = 0; r < 4; ++r)
        x.set(r, 2);
    EXPECT_EQ(x.applyCic(), 1u);
    EXPECT_TRUE(x.columnInverted(0));
    EXPECT_FALSE(x.columnInverted(1));
    EXPECT_EQ(x.denseCornerCases(), 1u);
    // Post-inversion the stored ones must be <= N/2.
    EXPECT_LE(x.columnOnes(0), 4u);
}

TEST(BinaryCrossbar, LogicalColumnUndoesInversion)
{
    Rng rng(601);
    BinaryCrossbar x(32, 16);
    std::vector<std::vector<bool>> truth(
        16, std::vector<bool>(32, false));
    for (unsigned c = 0; c < 16; ++c) {
        for (unsigned r = 0; r < 32; ++r) {
            if (rng.chance(c < 8 ? 0.8 : 0.2)) { // half dense
                x.set(r, c);
                truth[c][r] = true;
            }
        }
    }
    x.applyCic();
    BitVec input(32);
    for (unsigned r = 0; r < 32; ++r)
        if (rng.chance(0.5))
            input.set(r);
    for (unsigned c = 0; c < 16; ++c) {
        std::int64_t expect = 0;
        for (unsigned r = 0; r < 32; ++r)
            expect += (truth[c][r] && input.get(r)) ? 1 : 0;
        EXPECT_EQ(x.logicalColumn(c, input), expect) << "col " << c;
    }
}

TEST(BinaryCrossbar, ColumnMaxOutputBitsForHeadstart)
{
    BinaryCrossbar x(64, 2);
    for (unsigned r = 0; r < 5; ++r)
        x.set(r, 0);
    EXPECT_EQ(x.columnMaxOutputBits(0), 3u); // 5 -> needs 3 bits
    EXPECT_EQ(x.columnMaxOutputBits(1), 0u); // empty column
}

TEST(BinaryCrossbar, NoisyReadWithIdealCellsIsExact)
{
    Rng rng(607);
    BinaryCrossbar x(64, 8);
    for (unsigned c = 0; c < 8; ++c)
        for (unsigned r = 0; r < 64; ++r)
            if (rng.chance(0.3))
                x.set(r, c);
    BitVec input(64);
    for (unsigned r = 0; r < 64; ++r)
        if (rng.chance(0.5))
            input.set(r);
    CellParams ideal; // range 1500, 1 bit, no error
    const ColumnReadModel model(ideal);
    for (unsigned c = 0; c < 8; ++c) {
        EXPECT_EQ(x.readColumnNoisy(c, input, model, nullptr),
                  x.readColumn(c, input))
            << "col " << c;
    }
}

TEST(BinaryCrossbar, NoisyReadLeakageShiftsDenseColumns)
{
    // 2-bit-equivalent leakage at low range: with enough active
    // off-cells, the quantized read exceeds the true count.
    CellParams weak;
    weak.bitsPerCell = 2;
    weak.rOff = weak.rOn * 200.0; // extreme leakage
    const ColumnReadModel model(weak);
    BinaryCrossbar x(512, 1);
    // Empty column, every row driven: pure leakage.
    BitVec input(512);
    for (unsigned r = 0; r < 512; ++r)
        input.set(r);
    EXPECT_GT(x.readColumnNoisy(0, input, model, nullptr), 0);
    EXPECT_EQ(x.readColumn(0, input), 0);
}

TEST(BinaryCrossbar, Misuse)
{
    EXPECT_THROW(BinaryCrossbar(0, 4), FatalError);
    BinaryCrossbar x(4, 4);
    EXPECT_THROW(x.set(4, 0), PanicError);
    EXPECT_THROW(x.get(0, 4), PanicError);
}

} // namespace
} // namespace msc
