/**
 * @file
 * Tests for sparse containers, kernels, and Matrix Market I/O.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sparse/csr.hh"
#include "sparse/matrix_market.hh"
#include "sparse/stats.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

Coo
smallCoo()
{
    // [ 1 0 2 ]
    // [ 0 3 0 ]
    // [ 4 0 5 ]
    Coo coo;
    coo.rows = coo.cols = 3;
    coo.add(0, 0, 1);
    coo.add(0, 2, 2);
    coo.add(1, 1, 3);
    coo.add(2, 0, 4);
    coo.add(2, 2, 5);
    return coo;
}

TEST(Csr, FromCooBasicLayout)
{
    const Csr m = Csr::fromCoo(smallCoo());
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 3);
    EXPECT_EQ(m.nnz(), 5u);
    EXPECT_EQ(m.rowNnz(0), 2);
    EXPECT_EQ(m.rowNnz(1), 1);
    EXPECT_EQ(m.rowNnz(2), 2);
    EXPECT_EQ(m.rowCols(0)[0], 0);
    EXPECT_EQ(m.rowCols(0)[1], 2);
    EXPECT_EQ(m.rowVals(2)[1], 5.0);
}

TEST(Csr, FromCooSumsDuplicates)
{
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(0, 0, 1);
    coo.add(0, 0, 2);
    coo.add(1, 1, 5);
    const Csr m = Csr::fromCoo(coo);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.rowVals(0)[0], 3.0);
}

TEST(Csr, FromCooUnsortedInput)
{
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(1, 1, 4);
    coo.add(0, 1, 2);
    coo.add(1, 0, 3);
    coo.add(0, 0, 1);
    const Csr m = Csr::fromCoo(coo);
    EXPECT_EQ(m.rowVals(0)[0], 1.0);
    EXPECT_EQ(m.rowVals(0)[1], 2.0);
    EXPECT_EQ(m.rowVals(1)[0], 3.0);
    EXPECT_EQ(m.rowVals(1)[1], 4.0);
}

TEST(Csr, FromCooRejectsOutOfRange)
{
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(2, 0, 1.0);
    EXPECT_THROW(Csr::fromCoo(coo), FatalError);
}

TEST(Csr, EmptyRowsAreHandled)
{
    Coo coo;
    coo.rows = 4;
    coo.cols = 4;
    coo.add(2, 2, 1.0);
    const Csr m = Csr::fromCoo(coo);
    EXPECT_EQ(m.rowNnz(0), 0);
    EXPECT_EQ(m.rowNnz(1), 0);
    EXPECT_EQ(m.rowNnz(2), 1);
    EXPECT_EQ(m.rowNnz(3), 0);
    std::vector<double> x(4, 1.0), y(4, -1.0);
    m.spmv(x, y);
    EXPECT_EQ(y[0], 0.0);
    EXPECT_EQ(y[2], 1.0);
}

TEST(Csr, SpmvMatchesDense)
{
    const Csr m = Csr::fromCoo(smallCoo());
    const std::vector<double> x{1.0, 2.0, 3.0};
    std::vector<double> y(3);
    m.spmv(x, y);
    EXPECT_EQ(y[0], 1 * 1 + 2 * 3.0);
    EXPECT_EQ(y[1], 3 * 2.0);
    EXPECT_EQ(y[2], 4 * 1 + 5 * 3.0);
}

TEST(Csr, SpmvDimensionMismatch)
{
    const Csr m = Csr::fromCoo(smallCoo());
    std::vector<double> x(2), y(3);
    EXPECT_THROW(m.spmv(x, y), FatalError);
}

TEST(Csr, TransposeInvolution)
{
    Rng rng(59);
    Coo coo;
    coo.rows = 20;
    coo.cols = 15;
    for (int i = 0; i < 60; ++i) {
        coo.add(static_cast<std::int32_t>(rng.below(20)),
                static_cast<std::int32_t>(rng.below(15)),
                rng.uniform(-1, 1));
    }
    const Csr m = Csr::fromCoo(coo);
    const Csr tt = m.transpose().transpose();
    EXPECT_EQ(tt.nnz(), m.nnz());
    std::vector<double> x(15), y1(20), y2(20);
    for (auto &v : x)
        v = rng.uniform(-1, 1);
    m.spmv(x, y1);
    tt.spmv(x, y2);
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Csr, SpmvTransposeMatchesTransposedSpmv)
{
    Rng rng(61);
    Coo coo;
    coo.rows = 12;
    coo.cols = 17;
    for (int i = 0; i < 50; ++i) {
        coo.add(static_cast<std::int32_t>(rng.below(12)),
                static_cast<std::int32_t>(rng.below(17)),
                rng.uniform(-1, 1));
    }
    const Csr m = Csr::fromCoo(coo);
    std::vector<double> x(12), ya(17), yb(17);
    for (auto &v : x)
        v = rng.uniform(-1, 1);
    m.spmvTranspose(x, ya);
    m.transpose().spmv(x, yb);
    for (int i = 0; i < 17; ++i)
        EXPECT_DOUBLE_EQ(ya[i], yb[i]);
}

TEST(Csr, SymmetryDetection)
{
    Coo coo;
    coo.rows = coo.cols = 3;
    coo.add(0, 1, 2.0);
    coo.add(1, 0, 2.0);
    coo.add(2, 2, 1.0);
    EXPECT_TRUE(Csr::fromCoo(coo).isSymmetric());
    coo.add(0, 2, 1.0);
    EXPECT_FALSE(Csr::fromCoo(coo).isSymmetric());
}

TEST(Csr, IdentityActsAsIdentity)
{
    const Csr id = Csr::identity(5);
    std::vector<double> x{1, 2, 3, 4, 5}, y(5);
    id.spmv(x, y);
    EXPECT_EQ(x, y);
}

TEST(Kernels, AxpyDotNorm)
{
    std::vector<double> x{1, 2, 3};
    std::vector<double> y{4, 5, 6};
    axpy(2.0, x, y);
    EXPECT_EQ(y[0], 6.0);
    EXPECT_EQ(y[1], 9.0);
    EXPECT_EQ(y[2], 12.0);
    EXPECT_EQ(dot(x, x), 14.0);
    EXPECT_DOUBLE_EQ(norm2(x), std::sqrt(14.0));
    std::vector<double> bad(2);
    EXPECT_THROW(axpy(1.0, bad, y), FatalError);
    EXPECT_THROW(dot(bad, y), FatalError);
}

TEST(MatrixMarket, WriteReadRoundTrip)
{
    const Csr m = Csr::fromCoo(smallCoo());
    std::stringstream ss;
    writeMatrixMarket(m, ss);
    const Csr r = readMatrixMarket(ss);
    EXPECT_EQ(r.rows(), m.rows());
    EXPECT_EQ(r.nnz(), m.nnz());
    std::vector<double> x{1.0, -2.0, 0.5}, y1(3), y2(3);
    m.spmv(x, y1);
    r.spmv(x, y2);
    EXPECT_EQ(y1, y2);
}

TEST(MatrixMarket, ReadsSymmetricStorage)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real symmetric\n"
       << "% comment line\n"
       << "3 3 3\n"
       << "1 1 2.0\n"
       << "2 1 -1.0\n"
       << "3 3 4.0\n";
    const Csr m = readMatrixMarket(ss);
    EXPECT_EQ(m.nnz(), 4u); // off-diagonal expands to both halves
    EXPECT_TRUE(m.isSymmetric());
}

TEST(MatrixMarket, ReadsPatternField)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate pattern general\n"
       << "2 2 2\n"
       << "1 1\n"
       << "2 2\n";
    const Csr m = readMatrixMarket(ss);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.rowVals(0)[0], 1.0);
}

TEST(MatrixMarket, RejectsBadBanner)
{
    std::stringstream ss;
    ss << "%%NotMatrixMarket nope\n";
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(MatrixMarket, RejectsTruncatedData)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 2\n"
       << "1 1 1.0\n";
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(Stats, BasicQuantities)
{
    const Csr m = Csr::fromCoo(smallCoo());
    const MatrixStats s = computeStats(m);
    EXPECT_EQ(s.rows, 3);
    EXPECT_EQ(s.nnz, 5u);
    EXPECT_NEAR(s.nnzPerRow, 5.0 / 3.0, 1e-12);
    EXPECT_EQ(s.maxRowNnz, 2);
    EXPECT_EQ(s.bandwidth, 2);
    // values 1..5: exponents 0..2
    EXPECT_EQ(s.expMin, 0);
    EXPECT_EQ(s.expMax, 2);
    // The pattern (not the values) of smallCoo happens to be
    // symmetric: (0,2) and (2,0) are both present.
    EXPECT_TRUE(s.structurallySymmetric);
    EXPECT_FALSE(m.isSymmetric());
}

} // namespace
} // namespace msc
