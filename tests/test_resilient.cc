/**
 * @file
 * End-to-end tests for the self-healing solver runtime
 * (solver/resilient.hh + fault/faulty_operator.hh): detection,
 * escalation through reprogram and fallback, checkpoint restarts,
 * and bit-reproducible campaigns.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/faulty_operator.hh"
#include "solver/resilient.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

double
relResidual(const Csr &a, std::span<const double> b,
            std::span<const double> x)
{
    std::vector<double> ax(b.size());
    a.spmv(x, ax);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        num += (b[i] - ax[i]) * (b[i] - ax[i]);
        den += b[i] * b[i];
    }
    return std::sqrt(num / den);
}

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

Csr
generalMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.scatterPerRow = 1.0;
    p.symmetricPattern = false;
    p.diagDominance = 0.2;
    p.seed = seed;
    return genTiled(p);
}

TEST(ResilientSolver, RejectsBadPolicy)
{
    const Csr m = spdMatrix(64, 1);
    FaultyAccelOperator op(m, FaultCampaign{});
    RecoveryPolicy policy;
    policy.checkpointInterval = 0;
    EXPECT_THROW(
        ResilientSolver(op, SolverKind::Cg, SolverConfig{}, policy),
        FatalError);
}

TEST(ResilientSolver, FaultFreeRunIsQuiet)
{
    const Csr m = spdMatrix(256, 17);
    FaultyAccelOperator op(m, FaultCampaign{}); // no faults
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 2000;
    ResilientSolver solver(op, SolverKind::Cg, cfg);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.status, SolveStatus::Converged);
    EXPECT_LT(relResidual(m, b, x), 1e-6);
    const RecoveryStats &rec = r.recovery;
    EXPECT_EQ(rec.nanEvents, 0u);
    EXPECT_EQ(rec.reprograms, 0u);
    EXPECT_EQ(rec.fallbacks, 0u);
    EXPECT_EQ(rec.checkpointRestarts, 0u);
    EXPECT_EQ(rec.degradedBlocks, 0u);
    EXPECT_GT(rec.segments, 0u);
}

/**
 * The acceptance scenario: mid-solve transient upsets (some of them
 * saturating to non-finite values) plus one dead crossbar and a
 * sprinkle of stuck cells. The resilient run must converge to the
 * same tolerance as the fault-free run, record at least one
 * reprogram and/or fallback, and never hand a non-finite iterate
 * back to the caller.
 */
TEST(ResilientSolver, RecoversFromTransientsAndDeadCrossbar)
{
    const Csr m = spdMatrix(256, 17);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;

    // Fault-free reference.
    FaultyAccelOperator clean(m, FaultCampaign{});
    ResilientSolver refSolver(clean, SolverKind::Cg, cfg);
    std::vector<double> xRef(b.size(), 0.0);
    const SolverResult ref = refSolver.solve(b, xRef);
    ASSERT_TRUE(ref.converged);

    FaultCampaign camp;
    camp.seed = 99;
    camp.stuckCellRate = 0.01;
    camp.transientUpsetRate = 0.02;
    camp.saturationRate = 0.3;
    camp.forcedDeadBlock = 0;
    FaultyAccelOperator op(m, camp);
    ASSERT_TRUE(op.blockDead(0));

    ResilientSolver solver(op, SolverKind::Cg, cfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);

    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.relResidual, cfg.tolerance);
    // Converged against the *true* system, not the faulty operator.
    EXPECT_LT(relResidual(m, b, x), 1e-6);
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));

    const RecoveryStats &rec = r.recovery;
    // The dead crossbar is unhealable: its reprogram fails and it
    // must end up degraded.
    EXPECT_GE(rec.reprograms + rec.fallbacks, 1u);
    EXPECT_GE(rec.fallbacks, 1u);
    EXPECT_TRUE(op.isDegraded(0));
    EXPECT_GE(rec.scrubs, 1u);
    EXPECT_GE(rec.degradedBlocks, 1u);
}

TEST(ResilientSolver, CampaignsAreDeterministic)
{
    // Two runs with the same campaign seed must produce identical
    // RecoveryStats, iteration counts, and iterates -- bit for bit.
    const Csr m = spdMatrix(256, 17);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    FaultCampaign camp;
    camp.seed = 99;
    camp.stuckCellRate = 0.01;
    camp.transientUpsetRate = 0.02;
    camp.saturationRate = 0.3;
    camp.forcedDeadBlock = 0;

    auto run = [&](std::vector<double> &x) {
        FaultyAccelOperator op(m, camp);
        ResilientSolver solver(op, SolverKind::Cg, cfg);
        return solver.solve(b, x);
    };
    std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
    const SolverResult r1 = run(x1);
    const SolverResult r2 = run(x2);

    EXPECT_EQ(r1.converged, r2.converged);
    EXPECT_EQ(r1.iterations, r2.iterations);
    EXPECT_EQ(r1.relResidual, r2.relResidual);
    const RecoveryStats &a = r1.recovery, &c = r2.recovery;
    EXPECT_EQ(a.nanEvents, c.nanEvents);
    EXPECT_EQ(a.divergenceEvents, c.divergenceEvents);
    EXPECT_EQ(a.stagnationEvents, c.stagnationEvents);
    EXPECT_EQ(a.scrubs, c.scrubs);
    EXPECT_EQ(a.reprograms, c.reprograms);
    EXPECT_EQ(a.reprogramFailures, c.reprogramFailures);
    EXPECT_EQ(a.checkpointRestarts, c.checkpointRestarts);
    EXPECT_EQ(a.fallbacks, c.fallbacks);
    EXPECT_EQ(a.segments, c.segments);
    EXPECT_EQ(a.degradedBlocks, c.degradedBlocks);
    for (std::size_t i = 0; i < x1.size(); ++i)
        EXPECT_EQ(x1[i], x2[i]) << "row " << i;
}

TEST(ResilientSolver, SaturationStormTriggersNanPathAndHeals)
{
    // Every block MVM saturates one output to Inf: the CG residual
    // goes non-finite almost immediately. The runtime must detect
    // every event, restart from checkpoints, exhaust its recovery
    // budget, degrade everything, and still deliver the solution.
    const Csr m = spdMatrix(192, 23);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    FaultCampaign camp;
    camp.seed = 7;
    camp.transientUpsetRate = 1.0;
    camp.saturationRate = 1.0;
    FaultyAccelOperator op(m, camp);
    ResilientSolver solver(op, SolverKind::Cg, cfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);

    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(m, b, x), 1e-6);
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
    const RecoveryStats &rec = r.recovery;
    EXPECT_GE(rec.nanEvents, 1u);
    EXPECT_GE(rec.checkpointRestarts, 1u);
    // Transients leave no scrub trace; healing comes from the final
    // degrade-everything rung -- which means the retry budget was
    // exhausted, and Degraded outranks Converged in the status even
    // though the solve met the tolerance.
    EXPECT_EQ(rec.degradedBlocks, op.blockCount());
    EXPECT_EQ(r.status, SolveStatus::Degraded);
    EXPECT_EQ(rec.retryAttempts, 10u);
    EXPECT_GT(rec.backoffNanos, 0u);
}

TEST(ResilientSolver, TerminalStatusMaxIterations)
{
    const Csr m = spdMatrix(256, 17);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-16; // out of reach in 5 iterations
    cfg.maxIterations = 5;
    FaultyAccelOperator op(m, FaultCampaign{});
    ResilientSolver solver(op, SolverKind::Cg, cfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.status, SolveStatus::MaxIterations);
    EXPECT_EQ(r.iterations, 5);
}

TEST(ResilientSolver, TerminalStatusCancelledAndDeadline)
{
    const Csr m = spdMatrix(256, 17);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    FaultyAccelOperator op(m, FaultCampaign{});

    // Forced cancellation a few polls in.
    {
        ExecContext ctx;
        ctx.cancelAfterChecks(3);
        SolverConfig cfg;
        cfg.tolerance = 0.0; // unreachable
        cfg.maxIterations = 100000;
        cfg.exec = &ctx;
        ResilientSolver solver(op, SolverKind::Cg, cfg);
        const SolverResult r = solver.solve(b, x);
        EXPECT_EQ(r.status, SolveStatus::Cancelled);
        EXPECT_FALSE(r.converged);
        EXPECT_LT(r.iterations, cfg.maxIterations);
        for (double v : x)
            EXPECT_TRUE(std::isfinite(v));
    }
    // Already-expired deadline: the solve stops before iterating.
    {
        ExecContext ctx;
        ctx.setDeadline(ExecContext::Clock::now() -
                        std::chrono::milliseconds(1));
        SolverConfig cfg;
        cfg.exec = &ctx;
        ResilientSolver solver(op, SolverKind::Cg, cfg);
        std::fill(x.begin(), x.end(), 0.0);
        const SolverResult r = solver.solve(b, x);
        EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
        EXPECT_FALSE(r.converged);
        for (double v : x)
            EXPECT_EQ(v, 0.0);
    }
}

TEST(ResilientSolver, StuckAdcColumnIsDegradedNotReprogrammed)
{
    // A saturated ADC column pins one output at 1e30 -- finite, so
    // it surfaces as stagnation/divergence, and a rewrite cannot fix
    // the converter: the block must be degraded, not endlessly
    // reprogrammed.
    const Csr m = spdMatrix(192, 29);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    FaultCampaign camp;
    camp.seed = 13;
    camp.stuckColumnRate = 1.0; // every block
    FaultyAccelOperator op(m, camp);
    ASSERT_GT(op.blockCount(), 0u);
    ASSERT_GE(op.blockStuckColumn(0), 0);

    ResilientSolver solver(op, SolverKind::Cg, cfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);

    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(m, b, x), 1e-6);
    const RecoveryStats &rec = r.recovery;
    EXPECT_GE(rec.events(), 1u);
    EXPECT_GE(rec.reprogramFailures, 1u);
    EXPECT_EQ(rec.degradedBlocks, op.blockCount());
}

TEST(ResilientSolver, BiCgStabRecoversOnGeneralSystem)
{
    const Csr m = generalMatrix(256, 31);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    FaultCampaign camp;
    camp.seed = 43;
    camp.stuckCellRate = 0.01;
    camp.driftPerRead = 1e-7;
    camp.forcedDeadBlock = 0;
    FaultyAccelOperator op(m, camp);
    ResilientSolver solver(op, SolverKind::BiCgStab, cfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);

    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(m, b, x), 1e-6);
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(r.recovery.reprograms + r.recovery.fallbacks, 1u);
    EXPECT_TRUE(op.isDegraded(0));
}

TEST(ResilientSolver, GmresRunsUnderTheRuntime)
{
    const Csr m = generalMatrix(128, 37);
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 4000;
    FaultCampaign camp;
    camp.seed = 47;
    camp.forcedDeadBlock = 0;
    FaultyAccelOperator op(m, camp);
    ResilientSolver solver(op, SolverKind::Gmres, cfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult r = solver.solve(b, x);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(m, b, x), 1e-6);
    EXPECT_TRUE(op.isDegraded(0));
}

} // namespace
} // namespace msc
