/**
 * @file
 * Tests for the execution-control layer (runtime/exec_context.hh)
 * and the chaos harness that attacks it (fault/chaos.hh): deadline
 * expiry across every solver kind, forced and cross-thread
 * cancellation promptness, retry-budget exhaustion, graceful
 * degradation under injected execution faults, and the byte-identity
 * guarantee when nothing is armed. Chaos suites carry the Chaos
 * prefix so ctest can label and schedule them separately.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "check/check.hh"
#include "fault/chaos.hh"
#include "fault/faulty_operator.hh"
#include "runtime/exec_context.hh"
#include "solver/resilient.hh"
#include "solver/solver.hh"
#include "solver/stationary.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace msc {
namespace {

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

ExecContext
expiredContext()
{
    ExecContext ctx;
    ctx.setDeadline(ExecContext::Clock::now() -
                    std::chrono::milliseconds(1));
    return ctx;
}

// --- ExecContext / CancelToken / RetryBudget units ------------------

TEST(ExecContext, DefaultContextNeverStops)
{
    ExecContext ctx;
    EXPECT_FALSE(ctx.hasDeadline());
    EXPECT_FALSE(ctx.cancelled());
    EXPECT_FALSE(ctx.expired());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(ctx.shouldStop());
    EXPECT_NO_THROW(ctx.checkpoint());
    EXPECT_FALSE(execShouldStop(nullptr));
    EXPECT_NO_THROW(execCheckpoint(nullptr));
}

TEST(ExecContext, CancelTokenIsSharedAndIdempotent)
{
    ExecContext ctx;
    CancelToken copy = ctx.token(); // observes the same flag
    EXPECT_FALSE(ctx.shouldStop());
    copy.cancel();
    copy.cancel();
    EXPECT_TRUE(ctx.cancelled());
    EXPECT_TRUE(ctx.shouldStop());
    EXPECT_EQ(ctx.stopStatus(), SolveStatus::Cancelled);
    try {
        ctx.checkpoint();
        FAIL() << "checkpoint did not throw";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.status(), SolveStatus::Cancelled);
    }
}

TEST(ExecContext, DeadlineExpiryAndStatusPriority)
{
    ExecContext ctx = expiredContext();
    EXPECT_TRUE(ctx.hasDeadline());
    EXPECT_TRUE(ctx.expired());
    EXPECT_TRUE(ctx.shouldStop());
    EXPECT_EQ(ctx.stopStatus(), SolveStatus::DeadlineExceeded);
    // An explicit cancel outranks the deadline in the status.
    ctx.token().cancel();
    EXPECT_EQ(ctx.stopStatus(), SolveStatus::Cancelled);

    ExecContext future =
        ExecContext::withDeadline(std::chrono::hours(1));
    EXPECT_FALSE(future.shouldStop());
}

TEST(ExecContext, CancelAfterChecksFiresOnTheNthPoll)
{
    ExecContext ctx;
    ctx.cancelAfterChecks(3);
    EXPECT_FALSE(ctx.shouldStop()); // poll 1
    EXPECT_FALSE(ctx.shouldStop()); // poll 2
    EXPECT_TRUE(ctx.shouldStop());  // poll 3: token fires
    EXPECT_TRUE(ctx.cancelled());
    EXPECT_EQ(ctx.stopStatus(), SolveStatus::Cancelled);
}

TEST(ExecContext, StatusNamesAreStable)
{
    EXPECT_STREQ(toString(SolveStatus::Converged), "converged");
    EXPECT_STREQ(toString(SolveStatus::MaxIterations),
                 "max_iterations");
    EXPECT_STREQ(toString(SolveStatus::Breakdown), "breakdown");
    EXPECT_STREQ(toString(SolveStatus::Cancelled), "cancelled");
    EXPECT_STREQ(toString(SolveStatus::DeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(toString(SolveStatus::Degraded), "degraded");
}

TEST(ExecContext, RetryBudgetIsBoundedAndSeedDeterministic)
{
    RetryBudget a(3, 42);
    RetryBudget b(3, 42);
    EXPECT_FALSE(a.exhausted());
    std::chrono::nanoseconds total{0};
    std::chrono::nanoseconds prev{0};
    for (int k = 0; k < 3; ++k) {
        ASSERT_TRUE(a.tryAcquire());
        ASSERT_TRUE(b.tryAcquire());
        // Same seed, same walk: schedules are identical.
        EXPECT_EQ(a.lastDelay().count(), b.lastDelay().count());
        EXPECT_GT(a.lastDelay().count(), 0);
        // Exponential growth with <= 25% jitter never shrinks the
        // delay below the previous attempt's un-jittered base.
        EXPECT_GE(a.lastDelay(), prev / 2);
        prev = a.lastDelay();
        total += a.lastDelay();
    }
    EXPECT_TRUE(a.exhausted());
    EXPECT_EQ(a.attemptsUsed(), 3);
    EXPECT_EQ(a.attemptsLeft(), 0);
    EXPECT_FALSE(a.tryAcquire()); // consumes nothing once exhausted
    EXPECT_EQ(a.attemptsUsed(), 3);
    EXPECT_EQ(a.totalDelay(), total);

    RetryBudget other(3, 43);
    ASSERT_TRUE(other.tryAcquire());
    // Different seed, different jitter (overwhelmingly likely).
    EXPECT_NE(other.lastDelay().count(), b.lastDelay().count());

    RetryBudget none(0);
    EXPECT_TRUE(none.exhausted());
    EXPECT_FALSE(none.tryAcquire());
}

// --- deadline / cancellation through the solvers --------------------

TEST(ExecSolvers, ExpiredDeadlineStopsEveryKrylovKind)
{
    const Csr m = spdMatrix(128, 7);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    CsrOperator op(m);
    std::vector<double> b(n, 1.0);

    const ExecContext ctx = expiredContext();
    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    cfg.exec = &ctx;

    std::vector<double> x(n, 0.0);
    for (int kindIdx = 0; kindIdx < 4; ++kindIdx) {
        std::fill(x.begin(), x.end(), 0.0);
        SolverResult r;
        switch (kindIdx) {
          case 0:
            r = conjugateGradient(op, b, x, cfg);
            break;
          case 1:
            r = biCgStab(op, b, x, cfg);
            break;
          case 2:
            r = biCg(op, b, x, cfg);
            break;
          default:
            r = gmres(op, b, x, cfg, 30);
            break;
        }
        EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded)
            << "kind " << kindIdx;
        EXPECT_FALSE(r.converged) << "kind " << kindIdx;
        EXPECT_EQ(r.iterations, 0) << "kind " << kindIdx;
        EXPECT_EQ(r.relResidual, 1.0) << "kind " << kindIdx;
        // The iterate is untouched, not partial garbage.
        for (double v : x)
            EXPECT_EQ(v, 0.0);
    }
}

TEST(ExecSolvers, ExpiredDeadlineStopsStationarySolvers)
{
    const Csr m = spdMatrix(96, 11);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);

    const ExecContext ctx = expiredContext();
    SolverConfig cfg;
    cfg.exec = &ctx;

    SolverResult r = jacobiIteration(m, b, x, cfg);
    EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
    EXPECT_EQ(r.iterations, 0);
    EXPECT_EQ(r.relResidual, 1.0);

    r = gaussSeidel(m, b, x, cfg);
    EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
    EXPECT_EQ(r.iterations, 0);

    r = sor(m, b, x, 1.3, cfg);
    EXPECT_EQ(r.status, SolveStatus::DeadlineExceeded);
    EXPECT_EQ(r.iterations, 0);
}

TEST(ExecSolvers, ForcedCancelStopsWithinOneIteration)
{
    const Csr m = spdMatrix(128, 13);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    CsrOperator op(m);
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);

    ExecContext ctx;
    ctx.cancelAfterChecks(5);
    SolverConfig cfg;
    cfg.tolerance = 0.0; // unreachable: only the cancel can stop it
    cfg.maxIterations = 100000;
    cfg.exec = &ctx;

    const SolverResult r = conjugateGradient(op, b, x, cfg);
    EXPECT_EQ(r.status, SolveStatus::Cancelled);
    EXPECT_FALSE(r.converged);
    // One poll at entry plus one per iteration: the 5th poll fires
    // before the 5th iteration body runs.
    EXPECT_LE(r.iterations, 5);
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ExecSolvers, CancelFromAnotherThreadIsPrompt)
{
    const Csr m = spdMatrix(128, 17);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);

    ExecContext ctx;
    CancelToken controller = ctx.token();
    SolverConfig cfg;
    cfg.tolerance = 0.0; // unreachable
    cfg.maxIterations = 10000000;
    cfg.exec = &ctx;

    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        controller.cancel();
    });
    // Jacobi: no breakdown exit, so only the cancel (or the huge
    // iteration budget) can stop it -- a Krylov method at zero
    // tolerance would break down on denormal inner products first.
    const SolverResult r = jacobiIteration(m, b, x, cfg);
    canceller.join();

    EXPECT_EQ(r.status, SolveStatus::Cancelled);
    EXPECT_FALSE(r.converged);
    // Prompt: the solve stopped at an iteration boundary long before
    // its iteration budget.
    EXPECT_LT(r.iterations, cfg.maxIterations);
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ExecSolvers, QuietContextIsByteIdentical)
{
    // An armed-but-never-firing context must not perturb a single
    // bit: the context only ever stops work early, never reorders
    // it.
    const Csr m = spdMatrix(192, 19);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    CsrOperator op(m);
    std::vector<double> b(n, 1.0);
    SolverConfig plain;
    plain.tolerance = 1e-10;

    std::vector<double> xPlain(n, 0.0), xCtx(n, 0.0);
    const SolverResult rPlain =
        conjugateGradient(op, b, xPlain, plain);

    const ExecContext ctx =
        ExecContext::withDeadline(std::chrono::hours(1));
    SolverConfig withCtx = plain;
    withCtx.exec = &ctx;
    const SolverResult rCtx = conjugateGradient(op, b, xCtx, withCtx);

    EXPECT_EQ(xPlain, xCtx);
    EXPECT_EQ(rPlain.iterations, rCtx.iterations);
    EXPECT_EQ(rPlain.relResidual, rCtx.relResidual);
    EXPECT_EQ(rPlain.status, rCtx.status);
}

TEST(ExecSolvers, CheckSweepHonorsTimeout)
{
    // The msc_check driver path: a sweep with an absurd iteration
    // count and a tiny budget must come back promptly, flagged.
    check::Options opt;
    opt.iters = 1000000000ULL;
    opt.timeoutSec = 0.05;
    const check::Report report = check::runChecks(opt);
    EXPECT_TRUE(report.interrupted);
    EXPECT_NE(report.toJson().find("\"interrupted\": true"),
              std::string::npos);

    // Untimed sweeps never carry the key (byte-stability of the
    // golden report).
    check::Options quick;
    quick.iters = 1;
    const check::Report full = check::runChecks(quick);
    EXPECT_FALSE(full.interrupted);
    EXPECT_EQ(full.toJson().find("interrupted"), std::string::npos);
}

// --- chaos campaigns ------------------------------------------------

TEST(ChaosCampaign, AllocFailureStormDegradesGracefully)
{
    const Csr m = spdMatrix(128, 23);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);
    FaultyAccelOperator op(m, FaultCampaign{});
    ResilientSolver solver(op, SolverKind::Cg);

    ChaosCampaign camp;
    camp.allocFailRate = 1.0; // every workspace grant throws
    ChaosEngine chaos(camp);
    const SolverResult r = solver.solve(b, x);

    // Bounded: the retry budget caps the ladder, the final rung
    // degrades everything, and the solve reports it -- no hang, no
    // crash, no leak (the sanitize presets prove the latter).
    EXPECT_EQ(r.status, SolveStatus::Degraded);
    EXPECT_FALSE(r.converged);
    EXPECT_GE(r.recovery.allocFailures, 1u);
    EXPECT_EQ(r.recovery.retryAttempts, 10u); // policy.maxRecoveries
    EXPECT_GT(r.recovery.backoffNanos, 0u);
    EXPECT_GE(chaos.stats().allocFailures, 1u);
    for (double v : x)
        EXPECT_EQ(v, 0.0); // restored checkpoint, not garbage
}

TEST(ChaosCampaign, WorkerThrowStormIsAbsorbedAsStructuredStatus)
{
    const Csr m = spdMatrix(128, 29);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);
    FaultyAccelOperator op(m, FaultCampaign{});
    ResilientSolver solver(op, SolverKind::Cg);

    {
        ChaosCampaign camp;
        camp.taskThrowRate = 1.0; // every chunk body throws
        ChaosEngine chaos(camp);
        const SolverResult r = solver.solve(b, x);

        EXPECT_EQ(r.status, SolveStatus::Degraded);
        EXPECT_GE(r.recovery.workerFaults, 1u);
        EXPECT_GE(chaos.stats().taskThrows, 1u);
        for (double v : x)
            EXPECT_TRUE(std::isfinite(v));
    } // engine uninstalled here

    // The pool survived the storm: plain work still runs.
    std::vector<int> hits(64, 0);
    parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ChaosCampaign, TaskDelaysDoNotChangeResults)
{
    const Csr m = spdMatrix(128, 31);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;

    std::vector<double> xClean(n, 0.0), xSlow(n, 0.0);
    SolverResult clean, slow;
    {
        FaultyAccelOperator op(m, FaultCampaign{});
        ResilientSolver solver(op, SolverKind::Cg, cfg);
        clean = solver.solve(b, xClean);
    }
    {
        FaultyAccelOperator op(m, FaultCampaign{});
        ResilientSolver solver(op, SolverKind::Cg, cfg);
        ChaosCampaign camp;
        camp.taskDelayRate = 0.05;
        camp.taskDelayUs = 1;
        ChaosEngine chaos(camp);
        slow = solver.solve(b, xSlow);
        EXPECT_GE(chaos.stats().taskDelays, 1u);
    }
    // Delays stretch the wall clock, never the arithmetic.
    EXPECT_EQ(xClean, xSlow);
    EXPECT_EQ(clean.iterations, slow.iterations);
    EXPECT_EQ(clean.relResidual, slow.relResidual);
    EXPECT_EQ(clean.status, slow.status);
}

TEST(ChaosCampaign, ForcedMidSolveCancellationIsStructured)
{
    const Csr m = spdMatrix(128, 37);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);
    FaultyAccelOperator op(m, FaultCampaign{});

    ExecContext ctx;
    ChaosCampaign camp;
    camp.cancelAfterChecks = 40;
    ChaosEngine chaos(camp);
    chaos.arm(ctx);
    EXPECT_EQ(chaos.stats().armedCancels, 1u);

    SolverConfig cfg;
    cfg.tolerance = 0.0; // unreachable
    cfg.maxIterations = 100000;
    cfg.exec = &ctx;
    ResilientSolver solver(op, SolverKind::Cg, cfg);
    const SolverResult r = solver.solve(b, x);

    EXPECT_EQ(r.status, SolveStatus::Cancelled);
    EXPECT_FALSE(r.converged);
    EXPECT_LT(r.iterations, cfg.maxIterations);
    for (double v : x)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ChaosDeterminism, IdenticalCampaignsReplayIdentically)
{
    // Injection draws key on (seed, site, section offset, chunk) --
    // never on scheduling -- so re-running a campaign in the same
    // process replays the same faults and the same recovery.
    setGlobalThreads(4);
    const Csr m = spdMatrix(128, 41);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    std::vector<double> b(n, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 2000;

    ChaosCampaign camp;
    camp.seed = 77;
    camp.taskThrowRate = 1.0;

    auto run = [&](std::vector<double> &x, ChaosStats &stats) {
        FaultyAccelOperator op(m, FaultCampaign{});
        ResilientSolver solver(op, SolverKind::Cg, cfg);
        ChaosEngine chaos(camp);
        const SolverResult r = solver.solve(b, x);
        stats = chaos.stats();
        return r;
    };
    std::vector<double> x1(n, 0.0), x2(n, 0.0);
    ChaosStats s1, s2;
    const SolverResult r1 = run(x1, s1);
    const SolverResult r2 = run(x2, s2);

    EXPECT_EQ(r1.status, r2.status);
    EXPECT_EQ(r1.iterations, r2.iterations);
    EXPECT_EQ(r1.relResidual, r2.relResidual);
    EXPECT_EQ(r1.recovery.workerFaults, r2.recovery.workerFaults);
    EXPECT_EQ(r1.recovery.allocFailures, r2.recovery.allocFailures);
    EXPECT_EQ(r1.recovery.retryAttempts, r2.recovery.retryAttempts);
    EXPECT_EQ(r1.recovery.backoffNanos, r2.recovery.backoffNanos);
    EXPECT_EQ(r1.recovery.checkpointRestarts,
              r2.recovery.checkpointRestarts);
    EXPECT_EQ(r1.recovery.segments, r2.recovery.segments);
    EXPECT_EQ(x1, x2);
    // Per-*section* outcomes are deterministic (that is what drives
    // the solver trajectory above); the raw per-lane throw tally is
    // scheduling-dependent -- several lanes can each hit one chunk
    // before the job's cancel flag is visible -- so only its
    // presence is asserted.
    EXPECT_GE(s1.taskThrows, 1u);
    EXPECT_GE(s2.taskThrows, 1u);
    EXPECT_EQ(s1.allocFailures, s2.allocFailures);
    setGlobalThreads(8);
}

TEST(ChaosEngineApi, SecondEngineIsRejected)
{
    ChaosCampaign camp;
    ChaosEngine first(camp);
    EXPECT_THROW(ChaosEngine second(camp), PanicError);
}

} // namespace
} // namespace msc
