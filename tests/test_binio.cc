/**
 * @file
 * Binary artifact + streaming blocking tests (sparse/binio,
 * blocking/stream): the OutOfCore tier.
 *
 * The load-bearing contract is bit-identity: a matrix loaded from a
 * packed artifact -- zero-copy views straight out of the mapping --
 * must be indistinguishable, bit for bit, from the same matrix
 * parsed from Matrix Market text and preprocessed in core, all the
 * way through a full CG solve at any thread count. On top of that,
 * corrupted artifacts (chopped, bit-flipped, version-skewed) must
 * fail with a structured BinioError and fall back to text parsing
 * -- never UB, never a wrong answer.
 *
 * Suites carry the OutOfCore prefix: tests/CMakeLists.txt labels
 * them for the sanitizer presets (label OutOfCore).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

#include <filesystem>

#include "blocking/blocking.hh"
#include "blocking/stream.hh"
#include "service/prepare_cache.hh"
#include "solver/solver.hh"
#include "sparse/binio.hh"
#include "sparse/gen.hh"
#include "sparse/matrix_market.hh"
#include "sparse/stats.hh"
#include "util/hash128.hh"
#include "util/random.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace {

using namespace msc;

/** Per-test scratch file. Tests run as separate concurrent
 *  processes under ctest -j and several share a fixture name, so
 *  the pid is part of the path. */
std::string
tmpPath(const std::string &name)
{
#if __has_include(<unistd.h>)
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    return "/tmp/msc_test_binio_" + std::to_string(pid) + "_" +
           name;
}

/** Remove-on-scope-exit guard for scratch files. */
struct Scratch
{
    explicit Scratch(std::string p) : path(std::move(p)) {}
    ~Scratch() { std::remove(path.c_str()); }
    std::string path;
};

Csr
smallSpd(std::uint64_t seed, std::int32_t rows = 96)
{
    TiledParams gen;
    gen.rows = rows;
    gen.tile = 8;
    gen.tileDensity = 0.4;
    gen.scatterPerRow = 0.5;
    gen.spd = true;
    gen.seed = seed;
    return genTiled(gen);
}

void
expectSameCsr(const Csr &a, const Csr &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.nnz(), b.nnz());
    const auto arp = a.rowPtr(), brp = b.rowPtr();
    const auto aci = a.colIndex(), bci = b.colIndex();
    const auto av = a.values(), bv = b.values();
    EXPECT_EQ(std::memcmp(arp.data(), brp.data(), arp.size_bytes()),
              0);
    if (a.nnz() > 0) {
        EXPECT_EQ(
            std::memcmp(aci.data(), bci.data(), aci.size_bytes()),
            0);
        EXPECT_EQ(std::memcmp(av.data(), bv.data(), av.size_bytes()),
                  0);
    }
}

void
expectSamePlan(const BlockPlan &a, const BlockPlan &b)
{
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cols, b.cols);
    EXPECT_EQ(a.stats.totalNnz, b.stats.totalNnz);
    EXPECT_EQ(a.stats.blockedNnz, b.stats.blockedNnz);
    EXPECT_EQ(a.stats.unblockedNnz, b.stats.unblockedNnz);
    EXPECT_EQ(a.stats.expRangeEvictions, b.stats.expRangeEvictions);
    EXPECT_EQ(a.stats.blocksPerSize, b.stats.blocksPerSize);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        const MatrixBlock &x = a.blocks[i];
        const MatrixBlock &y = b.blocks[i];
        EXPECT_EQ(x.rowOrigin, y.rowOrigin) << "block " << i;
        EXPECT_EQ(x.colOrigin, y.colOrigin) << "block " << i;
        EXPECT_EQ(x.size, y.size) << "block " << i;
        ASSERT_EQ(x.elems.size(), y.elems.size()) << "block " << i;
        if (!x.elems.empty()) {
            EXPECT_EQ(std::memcmp(x.elems.data(), y.elems.data(),
                                  x.elems.size() * sizeof(Triplet)),
                      0)
                << "block " << i;
        }
    }
    expectSameCsr(a.unblocked, b.unblocked);
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    return bytes;
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

// --- round trips ---------------------------------------------------

TEST(OutOfCoreArtifact, MatrixRoundTripsBitwise)
{
    const Csr m = smallSpd(7);
    Scratch f(tmpPath("roundtrip_matrix.mscbin"));
    writeArtifact(f.path, m);

    const auto art = MappedArtifact::map(f.path);
    EXPECT_EQ(art->rows(), m.rows());
    EXPECT_EQ(art->cols(), m.cols());
    EXPECT_EQ(art->nnz(), m.nnz());
    EXPECT_FALSE(art->hasPlan());
    EXPECT_EQ(art->matrixKey(), csrContentKey(m));
    expectSameCsr(art->matrixView(), m);

    // The view stays valid and owns nothing: copying it detaches.
    Csr copy = art->matrixView();
    const Csr deep = copy; // copy materializes
    EXPECT_TRUE(deep.owning());
    expectSameCsr(deep, m);
}

TEST(OutOfCoreArtifact, PlanRoundTripsBitwise)
{
    const Csr m = smallSpd(11);
    BlockingConfig cfg;
    const BlockPlan plan = planBlocks(m, cfg);
    Scratch f(tmpPath("roundtrip_plan.mscbin"));
    writeArtifact(f.path, m, &plan, cfg);

    const auto art = MappedArtifact::map(f.path);
    ASSERT_TRUE(art->hasPlan());
    EXPECT_EQ(art->blockingKey(), blockingConfigKey(cfg));
    expectSamePlan(art->decodePlan(), plan);
}

TEST(OutOfCoreArtifact, EmptyMatrixRoundTrips)
{
    Coo coo{5, 3, {}};
    const Csr m = Csr::fromCoo(coo);
    Scratch f(tmpPath("roundtrip_empty.mscbin"));
    writeArtifact(f.path, m);
    const auto art = MappedArtifact::map(f.path);
    EXPECT_EQ(art->nnz(), 0u);
    expectSameCsr(art->matrixView(), m);
}

TEST(OutOfCoreArtifact, SidecarPathConvention)
{
    EXPECT_EQ(artifactSidecarPath("a/b.mtx"), "a/b.mtx.mscbin");
    EXPECT_EQ(artifactSidecarPath("a/b.mscbin"), "a/b.mscbin");
}

// --- streaming blocking preprocessor -------------------------------

TEST(OutOfCoreStreaming, MatchesInCorePlanBitwise)
{
    Rng rng(0xb10c);
    for (int round = 0; round < 12; ++round) {
        const std::int32_t rows =
            static_cast<std::int32_t>(rng.range(1, 150));
        const std::int32_t cols =
            static_cast<std::int32_t>(rng.range(1, 150));
        Coo coo{rows, cols, {}};
        const std::size_t wanted = rng.below(
            static_cast<std::uint64_t>(rows) * cols / 3 + 1);
        for (std::size_t k = 0; k < wanted; ++k) {
            coo.add(static_cast<std::int32_t>(rng.below(rows)),
                    static_cast<std::int32_t>(rng.below(cols)),
                    rng.uniform(-4.0, 4.0));
        }
        // Duplicates exercise the accumulation-order contract.
        if (!coo.entries.empty()) {
            const Triplet t =
                coo.entries[rng.below(coo.entries.size())];
            coo.add(t.row, t.col, 0.125);
        }
        BlockingConfig cfg;
        if (round % 2)
            cfg.sizes = {8, 4};

        const Csr m = Csr::fromCoo(coo);
        const BlockPlan incore = planBlocks(m, cfg);
        const EntrySource src = [&](const EntrySink &sink) {
            for (const Triplet &t : coo.entries)
                sink(t.row, t.col, t.val);
        };
        // Minimal strip and a larger multiple must both match.
        const std::int32_t h = stripHeightFor(cfg);
        expectSamePlan(planBlocksStreaming(rows, cols, src, cfg),
                       incore);
        expectSamePlan(
            planBlocksStreaming(rows, cols, src, cfg, 3 * h),
            incore);
    }
}

TEST(OutOfCoreStreaming, MatrixMarketSourceMatchesParse)
{
    const Csr m = smallSpd(23, 128);
    Scratch f(tmpPath("stream_source.mtx"));
    writeMatrixMarket(m, f.path);

    BlockingConfig cfg;
    const BlockPlan incore = planBlocks(m, cfg);
    const BlockPlan streamed = planBlocksStreaming(
        m.rows(), m.cols(), matrixMarketEntrySource(f.path), cfg);
    expectSamePlan(streamed, incore);
}

TEST(OutOfCoreStreaming, RejectsIllegalStripHeight)
{
    BlockingConfig cfg;
    cfg.sizes = {8, 4};
    EXPECT_EQ(stripHeightFor(cfg), 8);
    const EntrySource none = [](const EntrySink &) {};
    EXPECT_THROW(planBlocksStreaming(16, 16, none, cfg, 4),
                 FatalError); // not a multiple of lcm
    EXPECT_THROW(planBlocksStreaming(16, 16, none, cfg, -8),
                 FatalError);
}

// --- corruption ----------------------------------------------------

class OutOfCoreCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        m = smallSpd(31, 64);
        BlockingConfig cfg;
        path = tmpPath("corrupt.mscbin");
        const BlockPlan plan = planBlocks(m, cfg);
        writeArtifact(path, m, &plan, cfg);
        pristine = slurp(path);
        ASSERT_GT(pristine.size(), 112u);
    }

    void TearDown() override { std::remove(path.c_str()); }

    BinioError::Reason
    mapReason()
    {
        try {
            (void)MappedArtifact::map(path);
        } catch (const BinioError &e) {
            return e.reason();
        }
        ADD_FAILURE() << "corrupted artifact unexpectedly mapped";
        return BinioError::Reason::CannotOpen;
    }

    Csr m;
    std::string path;
    std::vector<char> pristine;
};

TEST_F(OutOfCoreCorruption, ByteChopIsTruncated)
{
    // Every proper prefix must fail structurally -- a short mapping
    // is never dereferenced past its end.
    for (const double frac : {0.0, 0.01, 0.3, 0.7, 0.999}) {
        std::vector<char> chopped = pristine;
        chopped.resize(static_cast<std::size_t>(
            static_cast<double>(pristine.size()) * frac));
        spit(path, chopped);
        EXPECT_EQ(mapReason(), BinioError::Reason::Truncated)
            << "at fraction " << frac;
    }
    std::vector<char> oneShort = pristine;
    oneShort.pop_back();
    spit(path, oneShort);
    EXPECT_EQ(mapReason(), BinioError::Reason::Truncated);
}

TEST_F(OutOfCoreCorruption, PayloadBitFlipIsBadChecksum)
{
    // Flip bits inside actual section payloads (a flip in alignment
    // padding is benign by design; the section table in the header
    // says where the real bytes are).
    const auto u64At = [&](std::size_t off) {
        std::uint64_t v;
        std::memcpy(&v, pristine.data() + off, 8);
        return v;
    };
    const std::uint64_t sectionCount = u64At(104);
    ASSERT_GT(sectionCount, 0u);
    for (std::uint64_t i = 0; i < sectionCount; ++i) {
        const std::size_t entry = 112 + i * 24;
        const std::uint64_t off = u64At(entry + 8);
        const std::uint64_t bytes = u64At(entry + 16);
        if (bytes == 0)
            continue;
        std::vector<char> flipped = pristine;
        const std::size_t at =
            static_cast<std::size_t>(off + bytes / 2);
        flipped[at] = static_cast<char>(flipped[at] ^ 0x10);
        spit(path, flipped);
        EXPECT_EQ(mapReason(), BinioError::Reason::BadChecksum)
            << "section " << u64At(entry) << " at byte " << at;
    }
}

TEST_F(OutOfCoreCorruption, BadMagicAndVersionAndEndianness)
{
    std::vector<char> bytes = pristine;
    bytes[0] = 'X';
    spit(path, bytes);
    EXPECT_EQ(mapReason(), BinioError::Reason::BadMagic);

    bytes = pristine;
    bytes[8] = 2; // version u64 at offset 8 (little-endian)
    spit(path, bytes);
    EXPECT_EQ(mapReason(), BinioError::Reason::BadVersion);

    bytes = pristine;
    bytes[16] = static_cast<char>(bytes[16] ^ 0xff); // endian tag
    spit(path, bytes);
    EXPECT_EQ(mapReason(), BinioError::Reason::Unsupported);
}

TEST_F(OutOfCoreCorruption, RandomCorruptionNeverCrashes)
{
    Rng rng(0xdead);
    for (int round = 0; round < 200; ++round) {
        std::vector<char> bytes = pristine;
        if (rng.chance(0.4)) {
            bytes.resize(rng.below(bytes.size()));
        } else {
            const int flips = 1 + static_cast<int>(rng.below(4));
            for (int i = 0; i < flips; ++i) {
                const std::size_t at = rng.below(bytes.size());
                bytes[at] = static_cast<char>(
                    bytes[at] ^
                    static_cast<char>(1u << rng.below(8)));
            }
        }
        spit(path, bytes);
        try {
            const auto art = MappedArtifact::map(path);
            // Only flips in alignment padding may map benignly;
            // the checksum covers the header's semantic fields and
            // every section byte, so whatever maps must be the
            // bit-identical matrix.
            expectSameCsr(art->matrixView(), m);
            if (art->hasPlan())
                (void)art->decodePlan();
        } catch (const BinioError &) {
            // Structured rejection: the expected outcome.
        }
    }
}

// --- forged (consistently-checksummed) artifacts -------------------
//
// Bit flips are the checksum's job; these fixtures model a hostile
// or mis-packed *writer* that recomputes the checksum over whatever
// lie it tells. Every lie must still fail structurally.

std::uint64_t
u64At(const std::vector<char> &bytes, std::size_t off)
{
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
}

void
putU64At(std::vector<char> &bytes, std::size_t off, std::uint64_t v)
{
    std::memcpy(bytes.data() + off, &v, 8);
}

/** Recompute the artifact checksum the way writeArtifact does --
 *  header semantic fields, then each section's id + payload bytes --
 *  and patch it in place. This is what makes a tampered artifact
 *  "attacker-consistent": everything past the checksum gate must
 *  still reject it. */
void
rehashArtifact(std::vector<char> &bytes)
{
    Hash128 h;
    h.u64(u64At(bytes, 24)); // rows
    h.u64(u64At(bytes, 32)); // cols
    h.u64(u64At(bytes, 40)); // nnz
    h.u64(u64At(bytes, 48)); // matrix key hi
    h.u64(u64At(bytes, 56)); // matrix key lo
    h.u64(u64At(bytes, 64)); // flags
    h.u64(u64At(bytes, 72)); // blocking key hi
    h.u64(u64At(bytes, 80)); // blocking key lo
    const std::uint64_t sectionCount = u64At(bytes, 104);
    for (std::uint64_t i = 0; i < sectionCount; ++i) {
        const std::size_t entry = 112 + i * 24;
        h.u64(u64At(bytes, entry));
        h.bytes(bytes.data() + u64At(bytes, entry + 8),
                u64At(bytes, entry + 16));
    }
    const Digest128 sum = h.digest();
    putU64At(bytes, 88, sum.hi);
    putU64At(bytes, 96, sum.lo);
}

/** Hand-craft a minimal, checksum-consistent matrix artifact with
 *  arbitrary header geometry: RowPtr as given, empty ColIdx and
 *  Values sections. Exactly the shape a wrapped nnz*4 / nnz*8
 *  expected-size computation would accept. */
std::vector<char>
craftArtifact(std::uint64_t rows, std::uint64_t cols,
              std::uint64_t nnz,
              const std::vector<std::int64_t> &rowPtr)
{
    const std::size_t headerBytes = 112 + 3 * 24;
    const std::size_t rowPtrOff = (headerBytes + 63) & ~std::size_t{63};
    const std::size_t rowPtrBytes = rowPtr.size() * 8;
    const std::size_t total = rowPtrOff + rowPtrBytes;
    const std::size_t emptyOff = (total + 7) & ~std::size_t{7};

    std::vector<char> bytes(std::max(total, emptyOff), 0);
    std::memcpy(bytes.data(), "MSCBIN1\n", 8);
    putU64At(bytes, 8, 1);                     // version
    putU64At(bytes, 16, 0x0102030405060708ULL); // endian tag
    putU64At(bytes, 24, rows);
    putU64At(bytes, 32, cols);
    putU64At(bytes, 40, nnz);
    putU64At(bytes, 104, 3); // section count
    const auto putSection = [&](std::size_t slot, std::uint64_t id,
                                std::uint64_t off,
                                std::uint64_t len) {
        const std::size_t at = 112 + slot * 24;
        putU64At(bytes, at, id);
        putU64At(bytes, at + 8, off);
        putU64At(bytes, at + 16, len);
    };
    putSection(0, 1, rowPtrOff, rowPtrBytes); // RowPtr
    putSection(1, 2, emptyOff, 0);            // ColIdx
    putSection(2, 3, emptyOff, 0);            // Values
    std::memcpy(bytes.data() + rowPtrOff, rowPtr.data(),
                rowPtrBytes);
    rehashArtifact(bytes);
    return bytes;
}

TEST(OutOfCoreForged, HugeNnzCannotWrapSectionSizes)
{
    // nnz = 2^62 makes nnz*4 and nnz*8 wrap to 0, matching the empty
    // ColIdx/Values sections; pre-fix, the content check then walked
    // 2^62 column indices off the end of the mapping. The nnz bound
    // must reject this before any nnz-derived arithmetic.
    Scratch f(tmpPath("forged_nnz.mscbin"));
    spit(f.path,
         craftArtifact(2, 2, std::uint64_t{1} << 62,
                       {0, 0, std::int64_t{1} << 62}));
    try {
        (void)MappedArtifact::map(f.path);
        FAIL() << "forged nnz unexpectedly mapped";
    } catch (const BinioError &e) {
        EXPECT_EQ(e.reason(), BinioError::Reason::BadSection);
    }

    // nnz below rows*cols but still wrapping nnz*8: the file-size
    // bound catches what the geometry bound cannot.
    spit(f.path, craftArtifact(0x7fffffffULL, 0x7fffffffULL,
                               std::uint64_t{1} << 61, {0}));
    try {
        (void)MappedArtifact::map(f.path);
        FAIL() << "forged nnz unexpectedly mapped";
    } catch (const BinioError &e) {
        EXPECT_EQ(e.reason(), BinioError::Reason::Truncated);
    }
}

TEST(OutOfCoreForged, PlanSizeClassCountCannotWrap)
{
    // A forged plan-stats size-class count near 2^60 makes
    // 48 + nSizes*16 wrap to the real section length; pre-fix that
    // passed the equality check and detonated as bad_alloc inside
    // decodePlan. The structural check must fire at map time.
    const Csr m = smallSpd(67, 64);
    BlockingConfig cfg;
    const BlockPlan plan = planBlocks(m, cfg);
    Scratch f(tmpPath("forged_nsizes.mscbin"));
    writeArtifact(f.path, m, &plan, cfg);

    std::vector<char> bytes = slurp(f.path);
    const std::uint64_t sectionCount = u64At(bytes, 104);
    std::size_t statsOff = 0;
    for (std::uint64_t i = 0; i < sectionCount; ++i) {
        const std::size_t entry = 112 + i * 24;
        if (u64At(bytes, entry) == 4) // Sec::PlanStats
            statsOff = static_cast<std::size_t>(
                u64At(bytes, entry + 8));
    }
    ASSERT_GT(statsOff, 0u);
    const std::uint64_t realCount = u64At(bytes, statsOff + 40);
    // (wrapped - 48) / 16 == realCount modulo 2^60: the exact forge.
    putU64At(bytes, statsOff + 40,
             realCount + (std::uint64_t{1} << 60));
    rehashArtifact(bytes);
    spit(f.path, bytes);
    try {
        (void)MappedArtifact::map(f.path);
        FAIL() << "forged size-class count unexpectedly mapped";
    } catch (const BinioError &e) {
        EXPECT_EQ(e.reason(), BinioError::Reason::BadSection);
    }
}

TEST(OutOfCoreForged, WrongMatrixKeyRejectedAtMap)
{
    // An artifact claiming another matrix's digest (checksummed
    // consistently) would insert a shared PrepareCache entry under
    // that digest and poison later text-parse submissions of the
    // real matrix. The loader must recompute the key from the
    // mapped bytes.
    const Csr m = smallSpd(71, 64);
    Scratch f(tmpPath("forged_key.mscbin"));
    writeArtifact(f.path, m);

    // Rehash without tampering first: the recomputed checksum must
    // match the writer's, proving the forge below really gets past
    // the checksum gate and is rejected by the key verification.
    std::vector<char> bytes = slurp(f.path);
    const std::uint64_t writerSumHi = u64At(bytes, 88);
    const std::uint64_t writerSumLo = u64At(bytes, 96);
    rehashArtifact(bytes);
    ASSERT_EQ(u64At(bytes, 88), writerSumHi);
    ASSERT_EQ(u64At(bytes, 96), writerSumLo);

    putU64At(bytes, 48, u64At(bytes, 48) ^ 0xdeadbeefULL);
    rehashArtifact(bytes);
    spit(f.path, bytes);
    try {
        (void)MappedArtifact::map(f.path);
        FAIL() << "forged matrix key unexpectedly mapped";
    } catch (const BinioError &e) {
        EXPECT_EQ(e.reason(), BinioError::Reason::BadChecksum);
    }

    // And through the sidecar path it degrades to a clean parse.
    const Csr m2 = smallSpd(73, 64);
    Scratch mtx(tmpPath("forged_key.mtx"));
    Scratch side(tmpPath("forged_key.mtx.mscbin"));
    writeMatrixMarket(m2, mtx.path);
    spit(side.path, bytes);
    const LoadedMatrix lm = loadMatrixFile(mtx.path);
    EXPECT_TRUE(lm.artifact == nullptr);
    expectSameCsr(lm.csr, m2);
}

// --- loadMatrixFile: sidecar fast path + fallback ------------------

TEST(OutOfCoreLoad, SidecarPreferredFallbackCounted)
{
    telemetry::Config tcfg;
    tcfg.enabled = true;
    telemetry::configure(tcfg);
    telemetry::reset();

    const Csr m = smallSpd(41, 64);
    Scratch mtx(tmpPath("load.mtx"));
    Scratch side(tmpPath("load.mtx.mscbin"));
    writeMatrixMarket(m, mtx.path);
    writeArtifact(side.path, m);

    // Sidecar present: mapped, zero-copy, counted as a map hit.
    const LoadedMatrix viaArtifact = loadMatrixFile(mtx.path);
    ASSERT_TRUE(viaArtifact.artifact != nullptr);
    EXPECT_FALSE(viaArtifact.csr.owning());
    expectSameCsr(viaArtifact.csr, m);
    EXPECT_EQ(telemetry::counterValue("binio.map_hits"), 1u);
    EXPECT_EQ(telemetry::counterValue("binio.fallback_parse"), 0u);

    // Corrupt the sidecar: clean fallback to the text parse.
    std::vector<char> bytes = slurp(side.path);
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    spit(side.path, bytes);
    const LoadedMatrix viaParse = loadMatrixFile(mtx.path);
    EXPECT_TRUE(viaParse.artifact == nullptr);
    EXPECT_TRUE(viaParse.csr.owning());
    expectSameCsr(viaParse.csr, m);
    EXPECT_EQ(telemetry::counterValue("binio.fallback_parse"), 1u);

    // No sidecar at all: same fallback.
    std::remove(side.path.c_str());
    const LoadedMatrix viaParse2 = loadMatrixFile(mtx.path);
    EXPECT_TRUE(viaParse2.artifact == nullptr);
    expectSameCsr(viaParse2.csr, m);
    EXPECT_EQ(telemetry::counterValue("binio.fallback_parse"), 2u);

    telemetry::configure(telemetry::Config{});
}

TEST(OutOfCoreLoad, StaleSidecarFallsBackToParse)
{
    telemetry::Config tcfg;
    tcfg.enabled = true;
    telemetry::configure(tcfg);
    telemetry::reset();

    // The matrix file holds A; the sidecar holds B (a valid,
    // checksummed artifact of a different matrix -- exactly what a
    // regenerated .mtx with a forgotten repack looks like).
    const Csr a = smallSpd(79, 64);
    const Csr b = smallSpd(83, 64);
    Scratch mtx(tmpPath("stale.mtx"));
    Scratch side(tmpPath("stale.mtx.mscbin"));
    writeMatrixMarket(a, mtx.path);
    writeArtifact(side.path, b);

    namespace fs = std::filesystem;
    const auto mtxTime = fs::last_write_time(mtx.path);

    // Sidecar older than the source: stale, must parse A.
    fs::last_write_time(side.path,
                        mtxTime - std::chrono::hours(1));
    const LoadedMatrix stale = loadMatrixFile(mtx.path);
    EXPECT_TRUE(stale.artifact == nullptr);
    expectSameCsr(stale.csr, a);
    EXPECT_EQ(telemetry::counterValue("binio.stale_sidecar"), 1u);
    EXPECT_EQ(telemetry::counterValue("binio.fallback_parse"), 1u);
    EXPECT_EQ(telemetry::counterValue("binio.map_hits"), 0u);

    // Sidecar at least as new as the source: the artifact wins.
    fs::last_write_time(side.path,
                        mtxTime + std::chrono::hours(1));
    const LoadedMatrix fresh = loadMatrixFile(mtx.path);
    ASSERT_TRUE(fresh.artifact != nullptr);
    expectSameCsr(fresh.csr, b);
    EXPECT_EQ(telemetry::counterValue("binio.map_hits"), 1u);

    telemetry::configure(telemetry::Config{});
}

TEST(OutOfCoreLoad, DirectArtifactPathErrorsPropagate)
{
    // A .mscbin path is an explicit artifact request: no text
    // fallback, the structured error reaches the caller.
    EXPECT_THROW(loadMatrixFile(tmpPath("missing.mscbin")),
                 BinioError);
}

// --- cache keying + solver equivalence -----------------------------

TEST(OutOfCoreEquivalence, ArtifactAndParseShareOneCacheKey)
{
    const Csr m = smallSpd(53, 64);
    Scratch f(tmpPath("keying.mscbin"));
    writeArtifact(f.path, m);
    const auto art = MappedArtifact::map(f.path);

    for (const ServiceBackend backend :
         {ServiceBackend::Csr, ServiceBackend::Accel,
          ServiceBackend::ClusterBitExact}) {
        OperatorConfig cfg;
        cfg.backend = backend;
        const CacheKey fromMatrix = operatorKey(m, cfg);
        const CacheKey fromDigest =
            operatorKeyFrom(art->matrixKey(), cfg);
        EXPECT_EQ(fromMatrix.hi, fromDigest.hi);
        EXPECT_EQ(fromMatrix.lo, fromDigest.lo);
    }

    // And the cache actually shares the entry across the two paths.
    PrepareCache cache;
    OperatorConfig cfg;
    bool hit = true;
    const auto a = cache.acquire(m, cfg, &hit);
    EXPECT_FALSE(hit);
    const auto b = cache.acquire(art, cfg, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(a.get(), b.get());
}

TEST(OutOfCoreEquivalence, PlanReuseRequiresMatchingBlockingKey)
{
    telemetry::Config tcfg;
    tcfg.enabled = true;
    telemetry::configure(tcfg);
    telemetry::reset();

    const Csr m = smallSpd(59, 64);
    BlockingConfig blocking;
    const BlockPlan plan = planBlocks(m, blocking);
    Scratch f(tmpPath("planreuse.mscbin"));
    writeArtifact(f.path, m, &plan, blocking);
    const auto art = MappedArtifact::map(f.path);

    OperatorConfig cfg;
    cfg.backend = ServiceBackend::ClusterBitExact;
    cfg.blocking = blocking;
    {
        PrepareCache cache;
        (void)cache.acquire(art, cfg);
        EXPECT_EQ(telemetry::counterValue("binio.plan_reuse"), 1u);
    }
    // A different blocking configuration must NOT reuse the plan.
    OperatorConfig other = cfg;
    other.blocking.sizes = {4};
    {
        PrepareCache cache;
        (void)cache.acquire(art, other);
        EXPECT_EQ(telemetry::counterValue("binio.plan_reuse"), 1u);
    }
    telemetry::configure(telemetry::Config{});
}

TEST(OutOfCoreEquivalence, CgTrajectoryBitIdenticalAcrossThreads)
{
    // The acceptance gate: artifact-loaded operator vs parsed +
    // preprocessed operator through a full CG solve, bitwise, at
    // 1, 2, and 8 threads, on the exact cluster-arithmetic backend
    // (plan reuse on) and the CSR reference backend.
    const Csr parsed = smallSpd(61, 96);
    BlockingConfig blocking;
    const BlockPlan plan = planBlocks(parsed, blocking);
    Scratch f(tmpPath("trajectory.mscbin"));
    writeArtifact(f.path, parsed, &plan, blocking);
    const auto art = MappedArtifact::map(f.path);

    std::vector<double> b(parsed.rows());
    Rng rng(99);
    for (double &v : b)
        v = rng.uniform(-1.0, 1.0);

    for (const ServiceBackend backend :
         {ServiceBackend::Csr, ServiceBackend::ClusterBitExact}) {
        OperatorConfig cfg;
        cfg.backend = backend;
        cfg.blocking = blocking;

        std::vector<std::vector<double>> solutions;
        for (const unsigned threads : {1u, 2u, 8u}) {
            setGlobalThreads(threads);
            // Two independent caches so each path really builds.
            PrepareCache parseCache, artCache;
            const auto viaParse = parseCache.acquire(parsed, cfg);
            const auto viaArt = artCache.acquire(art, cfg);

            SolverConfig scfg;
            scfg.tolerance = 1e-10;
            scfg.maxIterations = 500;
            std::vector<double> xParse(b.size(), 0.0);
            std::vector<double> xArt(b.size(), 0.0);
            const SolverResult rp = conjugateGradient(
                viaParse->op(), b, xParse, scfg);
            const SolverResult ra =
                conjugateGradient(viaArt->op(), b, xArt, scfg);

            EXPECT_EQ(rp.iterations, ra.iterations);
            ASSERT_EQ(xParse.size(), xArt.size());
            EXPECT_EQ(std::memcmp(xParse.data(), xArt.data(),
                                  xParse.size() * sizeof(double)),
                      0)
                << "backend "
                << static_cast<int>(backend) << " at " << threads
                << " threads";
            solutions.push_back(std::move(xArt));
        }
        // And the solve itself is thread-count invariant (the
        // engine's bit-determinism contract carries to views).
        for (std::size_t i = 1; i < solutions.size(); ++i) {
            EXPECT_EQ(std::memcmp(solutions[0].data(),
                                  solutions[i].data(),
                                  solutions[0].size() *
                                      sizeof(double)),
                      0);
        }
    }
    setGlobalThreads(0);
}

// --- 64-bit index-width regressions --------------------------------

TEST(OutOfCoreWidth, RowOffsetsAre64Bit)
{
    // Pin the promoted types: a regression back to 32-bit offsets
    // fails these at compile time.
    static_assert(
        std::is_same_v<decltype(std::declval<const Csr &>()
                                    .rowPtr())::element_type,
                       const std::int64_t>,
        "row pointers must be 64-bit: out-of-core matrices exceed "
        "2^31 nonzeros");
    static_assert(
        std::is_same_v<decltype(std::declval<const Csr &>().rowNnz(
                           0)),
                       std::int64_t>);
    static_assert(std::is_same_v<decltype(MatrixStats::maxRowNnz),
                                 std::int64_t>);
}

TEST(OutOfCoreWidth, ViewCarriesOffsetsPastInt32)
{
    // A zero-copy view over row offsets beyond 2^31: the metadata
    // paths (rowNnz, nnz, rowPtr) must not truncate. Only the
    // pointer array is real; no element access happens.
    constexpr std::int64_t big = (std::int64_t{1} << 31) + 7;
    const std::int64_t rowPtr[2] = {0, big};
    const std::int32_t dummyCols[1] = {0};
    const double dummyVals[1] = {0.0};
    const Csr v = Csr::view(1, 1, rowPtr, dummyCols, dummyVals,
                            static_cast<std::size_t>(big));
    EXPECT_EQ(v.rowNnz(0), big);
    EXPECT_EQ(v.nnz(), static_cast<std::size_t>(big));
    EXPECT_EQ(v.rowPtr()[1], big);
}

TEST(OutOfCoreWidth, ViewValidatesEndpoints)
{
    const std::int64_t badPtr[2] = {0, 3};
    const std::int32_t cols[1] = {0};
    const double vals[1] = {1.0};
    EXPECT_THROW((void)Csr::view(1, 1, badPtr, cols, vals, 2),
                 PanicError);
    EXPECT_THROW((void)Csr::view(-1, 1, badPtr, cols, vals, 2),
                 PanicError);
}

} // namespace
