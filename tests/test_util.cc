/**
 * @file
 * Tests for the utility layer: BitVec, Rng, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/bitvec.hh"
#include "util/intlog.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

TEST(BitVec, SetGetFlipResize)
{
    BitVec v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_FALSE(v.any());
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    EXPECT_EQ(v.popcount(), 4u);
    EXPECT_TRUE(v.get(64));
    v.flip(64);
    EXPECT_FALSE(v.get(64));
    v.set(0, false);
    EXPECT_EQ(v.popcount(), 2u);
    v.resize(10);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, InvertRespectsTailBits)
{
    BitVec v(70); // 6 bits in the second word
    v.invert();
    EXPECT_EQ(v.popcount(), 70u); // tail must not contribute
    v.invert();
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, DotIsPopcountOfAnd)
{
    BitVec a(128), b(128);
    for (unsigned i = 0; i < 128; i += 2)
        a.set(i);
    for (unsigned i = 0; i < 128; i += 3)
        b.set(i);
    std::size_t expect = 0;
    for (unsigned i = 0; i < 128; ++i)
        expect += (i % 2 == 0 && i % 3 == 0) ? 1 : 0;
    EXPECT_EQ(a.dot(b), expect);
    BitVec c(64);
    EXPECT_THROW(a.dot(c), PanicError);
}

TEST(BitVec, ClearAll)
{
    BitVec v(40);
    v.set(5);
    v.clearAll();
    EXPECT_FALSE(v.any());
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, BelowAndRangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Logging, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("x=", 5), PanicError);
    EXPECT_THROW(fatal("y=", 7), FatalError);
    try {
        panic("value ", 42, " bad");
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value 42 bad");
    }
}

TEST(Logging, QuietSuppresssesButDoesNotThrow)
{
    setLogQuiet(true);
    warn("should be invisible");
    inform("also invisible");
    setLogQuiet(false);
}

TEST(IntLog, BitsForCountBoundaries)
{
    EXPECT_EQ(bitsForCount(0), 0u);
    EXPECT_EQ(bitsForCount(1), 1u);
    EXPECT_EQ(bitsForCount(2), 2u);
    EXPECT_EQ(bitsForCount(3), 2u);
    for (unsigned k = 2; k < 64; ++k) {
        const std::uint64_t p = std::uint64_t{1} << k;
        EXPECT_EQ(bitsForCount(p - 1), k) << "k=" << k;
        EXPECT_EQ(bitsForCount(p), k + 1) << "k=" << k;
    }
    // The hand-rolled `while ((1u << bits) < n + 1)` loops this
    // helper replaced overflowed their shift near the top of the
    // range; std::bit_width is total.
    EXPECT_EQ(bitsForCount(std::numeric_limits<unsigned>::max()),
              32u);
    EXPECT_EQ(
        bitsForCount(std::numeric_limits<std::uint64_t>::max()),
        64u);
}

TEST(BitVec, ForEachSetBitVisitsAscending)
{
    BitVec v(200);
    const std::vector<std::size_t> want{0, 5, 63, 64, 127, 128, 199};
    for (std::size_t i : want)
        v.set(i);
    std::vector<std::size_t> got;
    v.forEachSetBit([&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

TEST(BitVec, ForEachSetBitEmptyAndRandomMatchGet)
{
    BitVec empty(150);
    empty.forEachSetBit(
        [](std::size_t) { FAIL() << "no bits set"; });

    Rng rng(21);
    BitVec v(321);
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (rng.chance(0.3)) {
            v.set(i);
            want.push_back(i);
        }
    }
    std::vector<std::size_t> got;
    v.forEachSetBit([&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want);
}

} // namespace
} // namespace msc
