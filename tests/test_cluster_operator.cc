/**
 * @file
 * Integration tests: full Krylov solves through the bit-level
 * cluster arithmetic (the paper's Section VII-C convergence claim).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/cluster_operator.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

Csr
testSystem(std::int32_t rows, bool spd, std::uint64_t seed)
{
    TiledParams p;
    p.rows = rows;
    p.tile = 16;
    p.tileDensity = 0.45;
    p.scatterPerRow = 0.2;
    p.spd = spd;
    p.symmetricPattern = spd;
    p.diagDominance = 0.08;
    p.seed = seed;
    return genTiled(p);
}

TEST(ClusterOperator, SpmvMatchesCsrWithinBlockRounding)
{
    setLogQuiet(true);
    const Csr m = testSystem(256, true, 2001);
    ClusterArithmeticOperator op(m);
    EXPECT_GT(op.blockPlan().blocks.size(), 0u);

    CsrOperator ref(m);
    std::vector<double> x(256), yHw(256), yRef(256);
    Rng rng(2003);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    op.apply(x, yHw);
    ref.apply(x, yRef);
    // Per-block exact rounding vs double accumulation: equal to a
    // few ulps of the row magnitude.
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(yHw[i], yRef[i],
                    1e-12 * (1.0 + std::fabs(yRef[i])))
            << "row " << i;
    }
    EXPECT_GT(op.totals().adcConversions, 0u);
}

TEST(ClusterOperator, CgConvergesInSameIterationsAsFp64)
{
    // Section VII-C: "The solvers running on the proposed
    // accelerator converge in the same number of iterations...
    // since both systems perform computation at the same level of
    // precision."
    setLogQuiet(true);
    const Csr m = testSystem(256, true, 2011);
    std::vector<double> b(256, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-9;
    cfg.maxIterations = 1500;

    CsrOperator fp64(m);
    std::vector<double> xRef(256, 0.0);
    const SolverResult ref = conjugateGradient(fp64, b, xRef, cfg);
    ASSERT_TRUE(ref.converged);

    ClusterArithmeticOperator hw(m);
    std::vector<double> xHw(256, 0.0);
    const SolverResult run = conjugateGradient(hw, b, xHw, cfg);
    EXPECT_TRUE(run.converged);
    // Same precision class: iteration counts agree within a couple.
    EXPECT_NEAR(run.iterations, ref.iterations, 2.0);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(xHw[i], xRef[i],
                    1e-6 * (1.0 + std::fabs(xRef[i])));
}

TEST(ClusterOperator, BiCgStabOnNonSymmetricSystem)
{
    setLogQuiet(true);
    const Csr m = testSystem(192, false, 2017);
    std::vector<double> b(192, 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-8;
    cfg.maxIterations = 1500;

    CsrOperator fp64(m);
    std::vector<double> xRef(192, 0.0);
    const SolverResult ref = biCgStab(fp64, b, xRef, cfg);
    ASSERT_TRUE(ref.converged);

    ClusterArithmeticOperator hw(m);
    std::vector<double> xHw(192, 0.0);
    const SolverResult run = biCgStab(hw, b, xHw, cfg);
    EXPECT_TRUE(run.converged);
    // BiCG-STAB is twitchier than CG; allow a modest band.
    EXPECT_NEAR(run.iterations, ref.iterations,
                0.2 * ref.iterations + 3.0);
}

TEST(ClusterOperator, NearestRoundingAlsoConverges)
{
    setLogQuiet(true);
    const Csr m = testSystem(192, true, 2027);
    std::vector<double> b(192, 1.0);
    ClusterConfig base;
    base.rounding = RoundingMode::NearestEven;
    ClusterArithmeticOperator hw(
        m, ClusterArithmeticOperator::smallSizes(), base);
    std::vector<double> x(192, 0.0);
    const SolverResult run =
        conjugateGradient(hw, b, x, {1e-9, 1500});
    EXPECT_TRUE(run.converged);
}

TEST(ClusterOperator, DimensionMismatchFatal)
{
    setLogQuiet(true);
    const Csr m = testSystem(64, true, 2029);
    ClusterArithmeticOperator op(m);
    std::vector<double> x(32), y(64);
    EXPECT_THROW(op.apply(x, y), FatalError);
}

} // namespace
} // namespace msc
