/**
 * @file
 * Tests for multi-accelerator row partitioning (Section VI).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_accel.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

Csr
bigBanded(std::int32_t rows, std::uint64_t seed)
{
    TiledParams p;
    p.rows = rows;
    p.tile = 48;
    p.tileDensity = 0.3;
    p.scatterPerRow = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.seed = seed;
    return genTiled(p);
}

TEST(MultiAccelerator, FunctionalSpmvMatchesCsr)
{
    setLogQuiet(true);
    const Csr m = bigBanded(6000, 1101);
    MultiAcceleratorConfig cfg;
    cfg.devices = 3;
    MultiAccelerator fleet(cfg);
    fleet.prepare(m);
    std::vector<double> x(6000), yFleet(6000), yCsr(6000);
    Rng rng(1103);
    for (auto &v : x)
        v = rng.uniform(-1, 1);
    fleet.spmv(x, yFleet);
    m.spmv(x, yCsr);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(yFleet[i], yCsr[i],
                    1e-12 * (1 + std::fabs(yCsr[i])));
}

TEST(MultiAccelerator, SingleDeviceMatchesPlainAccelerator)
{
    setLogQuiet(true);
    const Csr m = bigBanded(4096, 1109);
    MultiAcceleratorConfig cfg;
    cfg.devices = 1;
    MultiAccelerator fleet(cfg);
    const MultiPrepareResult mp = fleet.prepare(m);
    Accelerator single;
    const PrepareResult sp = single.prepare(m);
    // One device, no exchange: identical kernel costs.
    EXPECT_NEAR(mp.spmv.time, sp.spmv.time, 1e-12);
    EXPECT_NEAR(mp.dotOp.time, sp.dotOp.time, 1e-12);
}

TEST(MultiAccelerator, PartitioningShortensSpmv)
{
    setLogQuiet(true);
    // A matrix big enough that per-device CSR leftovers shrink when
    // partitioned.
    const Csr m = bigBanded(40000, 1117);
    MultiAcceleratorConfig one;
    one.devices = 1;
    MultiAccelerator f1(one);
    const auto r1 = f1.prepare(m);
    MultiAcceleratorConfig four;
    four.devices = 4;
    MultiAccelerator f4(four);
    const auto r4 = f4.prepare(m);
    ASSERT_EQ(r4.perDevice.size(), 4u);
    // Partitioning cannot make a single MVM slower than the
    // inter-chip exchange overhead allows.
    EXPECT_LT(r4.spmv.time,
              r1.spmv.time + 2 * four.interChipLatency +
                  40000.0 * 8.0 / four.interChipBandwidth);
}

TEST(MultiAccelerator, SolveCostScalesWithKernelCalls)
{
    setLogQuiet(true);
    const Csr m = bigBanded(4096, 1123);
    MultiAcceleratorConfig cfg;
    cfg.devices = 2;
    MultiAccelerator fleet(cfg);
    const MultiPrepareResult prep = fleet.prepare(m);
    SolverResult run;
    run.spmvCalls = 10;
    run.dotCalls = 20;
    run.axpyCalls = 30;
    const AccelCost cost = fleet.solveCost(run, false);
    const double kernels = 10 * prep.spmv.time +
                           20 * prep.dotOp.time +
                           30 * prep.axpyOp.time;
    EXPECT_NEAR(cost.time, kernels, 1e-12);
    EXPECT_GT(fleet.solveCost(run, true).time, cost.time);
}

TEST(MultiAccelerator, Misuse)
{
    MultiAcceleratorConfig bad;
    bad.devices = 0;
    EXPECT_THROW(MultiAccelerator{bad}, FatalError);
    MultiAcceleratorConfig cfg;
    MultiAccelerator fleet(cfg);
    std::vector<double> x(8), y(8);
    EXPECT_THROW(fleet.spmv(x, y), FatalError);
}

} // namespace
} // namespace msc
