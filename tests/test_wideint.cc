/**
 * @file
 * Unit and property tests for WideUInt.
 */

#include <gtest/gtest.h>

#include "util/random.hh"
#include "wideint/wideint.hh"

namespace msc {
namespace {

using u128n = unsigned __int128;

u128n
toNative(const U128 &v)
{
    return (static_cast<u128n>(v.word(1)) << 64) | v.word(0);
}

U128
fromNative(u128n v)
{
    U128 r;
    r.setWord(0, static_cast<std::uint64_t>(v));
    r.setWord(1, static_cast<std::uint64_t>(v >> 64));
    return r;
}

TEST(WideUInt, DefaultIsZero)
{
    U256 v;
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.bitLength(), 0u);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(WideUInt, SmallConstruction)
{
    U128 v(42);
    EXPECT_EQ(v.low(), 42u);
    EXPECT_EQ(v.bitLength(), 6u);
    EXPECT_FALSE(v.isZero());
}

TEST(WideUInt, BitSetGetFlip)
{
    U256 v;
    v.setBit(200);
    EXPECT_TRUE(v.bit(200));
    EXPECT_EQ(v.bitLength(), 201u);
    v.flipBit(200);
    EXPECT_TRUE(v.isZero());
    v.setBit(0);
    v.setBit(255);
    EXPECT_EQ(v.popcount(), 2u);
    EXPECT_EQ(v.countTrailingZeros(), 0u);
    v.setBit(0, false);
    EXPECT_EQ(v.countTrailingZeros(), 255u);
}

TEST(WideUInt, BitOutOfRangeReadsZero)
{
    U128 v(~std::uint64_t{0});
    EXPECT_FALSE(v.bit(128));
    EXPECT_FALSE(v.bit(100000));
}

TEST(WideUInt, SetBitOutOfRangePanics)
{
    U128 v;
    EXPECT_THROW(v.setBit(128), PanicError);
}

TEST(WideUInt, AdditionCarriesAcrossWords)
{
    U128 a(~std::uint64_t{0});
    U128 b(1);
    U128 c = a + b;
    EXPECT_EQ(c.word(0), 0u);
    EXPECT_EQ(c.word(1), 1u);
}

TEST(WideUInt, SubtractionBorrowsAcrossWords)
{
    U128 a;
    a.setWord(1, 1);
    U128 c = a - U128(1);
    EXPECT_EQ(c.word(0), ~std::uint64_t{0});
    EXPECT_EQ(c.word(1), 0u);
}

TEST(WideUInt, ShiftsMatchNative)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const u128n x =
            (static_cast<u128n>(rng.next()) << 64) | rng.next();
        const unsigned s = static_cast<unsigned>(rng.below(130));
        const U128 v = fromNative(x);
        const u128n expectL = s >= 128 ? 0 : (x << s);
        const u128n expectR = s >= 128 ? 0 : (x >> s);
        EXPECT_EQ(toNative(v << s), expectL) << "s=" << s;
        EXPECT_EQ(toNative(v >> s), expectR) << "s=" << s;
    }
}

TEST(WideUInt, AddSubMatchNative)
{
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const u128n x =
            (static_cast<u128n>(rng.next()) << 64) | rng.next();
        const u128n y =
            (static_cast<u128n>(rng.next()) << 64) | rng.next();
        EXPECT_EQ(toNative(fromNative(x) + fromNative(y)),
                  static_cast<u128n>(x + y));
        EXPECT_EQ(toNative(fromNative(x) - fromNative(y)),
                  static_cast<u128n>(x - y));
    }
}

TEST(WideUInt, CompareMatchesNative)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        u128n x = (static_cast<u128n>(rng.next()) << 64) | rng.next();
        u128n y = (static_cast<u128n>(rng.next()) << 64) | rng.next();
        if (i % 5 == 0)
            y = x;
        EXPECT_EQ(fromNative(x) < fromNative(y), x < y);
        EXPECT_EQ(fromNative(x) == fromNative(y), x == y);
        EXPECT_EQ(fromNative(x) >= fromNative(y), x >= y);
    }
}

TEST(WideUInt, MulWideMatchesNative)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        const U256 p = U128(a).mulWide(U128(b));
        const u128n expect = static_cast<u128n>(a) * b;
        EXPECT_EQ(p.word(0), static_cast<std::uint64_t>(expect));
        EXPECT_EQ(p.word(1), static_cast<std::uint64_t>(expect >> 64));
        EXPECT_EQ(p.word(2), 0u);
        EXPECT_EQ(p.word(3), 0u);
    }
}

TEST(WideUInt, MulWideBigOperands)
{
    // (2^100 + 1) * (2^100 + 1) = 2^200 + 2^101 + 1
    U128 a;
    a.setBit(100);
    a.setBit(0);
    U256 p = a.mulWide(a);
    U256 expect;
    expect.setBit(200);
    expect.setBit(101);
    expect.setBit(0);
    EXPECT_EQ(p, expect);
}

TEST(WideUInt, MulSmallAndDivSmallRoundTrip)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        U256 v;
        v.setWord(0, rng.next());
        v.setWord(1, rng.next());
        v.setWord(2, rng.next() & 0xffff);
        const std::uint64_t m = 1 + rng.below(1000000);
        U256 w = v;
        w.mulSmall(m);
        EXPECT_EQ(w.modSmall(m), 0u);
        const std::uint64_t rem = w.divSmall(m);
        EXPECT_EQ(rem, 0u);
        EXPECT_EQ(w, v);
    }
}

TEST(WideUInt, ModSmallMatchesManualResidue)
{
    // 2^64 mod 251: verify against iterated doubling.
    U128 v;
    v.setBit(64);
    std::uint64_t pow = 1;
    for (int i = 0; i < 64; ++i)
        pow = (pow * 2) % 251;
    EXPECT_EQ(v.modSmall(251), pow);
}

TEST(WideUInt, DivSmallByZeroPanics)
{
    U128 v(10);
    EXPECT_THROW(v.divSmall(0), PanicError);
}

TEST(WideUInt, AddShiftedMatchesExplicitShift)
{
    Rng rng(19);
    for (int i = 0; i < 200; ++i) {
        U256 acc;
        acc.setWord(0, rng.next());
        acc.setWord(1, rng.next());
        U256 add;
        add.setWord(0, rng.next());
        const unsigned s = static_cast<unsigned>(rng.below(200));
        U256 viaShift = acc + (add << s);
        U256 viaAddShifted = acc;
        viaAddShifted.addShifted(add, s);
        EXPECT_EQ(viaAddShifted, viaShift) << "s=" << s;
    }
}

TEST(WideUInt, BitLengthAndTrailingZeros)
{
    U256 v;
    v.setBit(77);
    EXPECT_EQ(v.bitLength(), 78u);
    EXPECT_EQ(v.countTrailingZeros(), 77u);
    EXPECT_EQ(U256().countTrailingZeros(), 256u);
}

TEST(WideUInt, WideningFromTruncatesHighWords)
{
    U256 v;
    v.setWord(0, 5);
    v.setWord(3, 9);
    U128 narrow = U128::from(v);
    EXPECT_EQ(narrow.word(0), 5u);
    EXPECT_EQ(narrow.word(1), 0u);
    U256 wide = U256::from(narrow);
    EXPECT_EQ(wide.word(0), 5u);
    EXPECT_EQ(wide.word(3), 0u);
}

TEST(WideUInt, ToHex)
{
    EXPECT_EQ(U128(0).toHex(), "0x0");
    EXPECT_EQ(U128(255).toHex(), "0xff");
    U128 v;
    v.setBit(64);
    EXPECT_EQ(v.toHex(), "0x10000000000000000");
}

TEST(WideUInt, ToDoubleApproximation)
{
    U128 v;
    v.setBit(100);
    EXPECT_DOUBLE_EQ(v.toDouble(), 0x1.0p100);
}

TEST(WideUInt, BitwiseOps)
{
    U128 a(0b1100);
    U128 b(0b1010);
    EXPECT_EQ((a & b).low(), 0b1000u);
    EXPECT_EQ((a | b).low(), 0b1110u);
    EXPECT_EQ((a ^ b).low(), 0b0110u);
    EXPECT_EQ((~U128(0)).popcount(), 128u);
}

TEST(WideUInt, SigWords)
{
    EXPECT_EQ(U256().sigWords(), 0u);
    EXPECT_EQ(U256(1).sigWords(), 1u);
    U256 v;
    v.setWord(2, 5);
    EXPECT_EQ(v.sigWords(), 3u);
    v.setWord(3, 1);
    EXPECT_EQ(v.sigWords(), 4u);
}

TEST(WideUInt, ExtractBits)
{
    U256 v;
    v.setWord(0, 0xfedcba9876543210ull);
    v.setWord(1, 0x0123456789abcdefull);
    v.setWord(3, 0x8000000000000001ull);
    EXPECT_EQ(v.extractBits(0, 16), 0x3210u);
    EXPECT_EQ(v.extractBits(4, 8), 0x21u);
    // Straddles the word boundary at bit 64: top nibble of word 0
    // (0xf) plus the low nibble of word 1 (0xf).
    EXPECT_EQ(v.extractBits(60, 8), 0xffu);
    EXPECT_EQ(v.extractBits(0, 64), 0xfedcba9876543210ull);
    EXPECT_EQ(v.extractBits(64, 64), 0x0123456789abcdefull);
    // High word plus the implicit zeros beyond the top word.
    EXPECT_EQ(v.extractBits(192, 64), 0x8000000000000001ull);
    EXPECT_EQ(v.extractBits(255, 8), 1u);
    EXPECT_EQ(v.extractBits(256, 16), 0u);
}

/** Random values with a controlled number of significant words, to
 *  exercise the width-aware fast paths on sparse high limbs. */
u128n
sparseNative(Rng &rng)
{
    switch (rng.below(4)) {
      case 0:
        return 0;
      case 1:
        return rng.next();
      case 2:
        return static_cast<u128n>(rng.next()) << 64;
      default:
        return (static_cast<u128n>(rng.next()) << 64) | rng.next();
    }
}

TEST(WideUInt, WidthAwarePathsMatchNative)
{
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        const u128n x = sparseNative(rng);
        const u128n y = sparseNative(rng);
        const unsigned s = static_cast<unsigned>(rng.below(130));
        EXPECT_EQ(toNative(fromNative(x) + fromNative(y)),
                  static_cast<u128n>(x + y));
        EXPECT_EQ(toNative(fromNative(x) - fromNative(y)),
                  static_cast<u128n>(x - y));
        EXPECT_EQ(toNative(fromNative(x) << s),
                  s >= 128 ? static_cast<u128n>(0) : (x << s));
        EXPECT_EQ(toNative(fromNative(x) >> s),
                  s >= 128 ? static_cast<u128n>(0) : (x >> s));
    }
}

TEST(WideUInt, AddShiftedMatchesShiftAndAdd)
{
    Rng rng(29);
    for (int i = 0; i < 2000; ++i) {
        U256 base;
        base.setWord(0, rng.next());
        if (rng.chance(0.5))
            base.setWord(2, rng.next());
        U256 add;
        switch (rng.below(4)) {
          case 0:
            break;
          case 1:
            add.setWord(0, rng.next());
            break;
          case 2:
            add.setWord(1, rng.next());
            break;
          default:
            add.setWord(0, rng.next());
            add.setWord(1, rng.next());
            add.setWord(2, rng.next());
            break;
        }
        const unsigned s = static_cast<unsigned>(rng.below(256));
        U256 expect = base + (add << s);
        U256 got = base;
        got.addShifted(add, s);
        EXPECT_EQ(got, expect) << "s=" << s;
    }
}

TEST(WideUInt, MulSmallSparseOperands)
{
    Rng rng(31);
    for (int i = 0; i < 500; ++i) {
        const u128n x = sparseNative(rng);
        const std::uint64_t m = rng.next() >> 40;
        U128 v = fromNative(x);
        v.mulSmall(m);
        EXPECT_EQ(toNative(v), static_cast<u128n>(x * m));
    }
    // Carry out of the top significant word lands in the next word.
    U256 w;
    w.setWord(0, ~std::uint64_t{0});
    w.mulSmall(~std::uint64_t{0});
    U256 expect;
    expect.setWord(0, 1);
    expect.setWord(1, ~std::uint64_t{0} - 1);
    EXPECT_EQ(w, expect);
}

} // namespace
} // namespace msc
