/**
 * @file
 * Tests for the unified fault-injection framework: campaign
 * configuration, deterministic injector streams, the bit-exact
 * HwCluster attachment, and the value-level FaultyAccelOperator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/hw_cluster.hh"
#include "core/config.hh"
#include "fault/fault.hh"
#include "fault/faulty_operator.hh"
#include "sparse/gen.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace msc {
namespace {

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

TEST(FaultCampaign, DefaultIsFaultFree)
{
    const FaultCampaign camp;
    EXPECT_FALSE(camp.anyEnabled());
    EXPECT_EQ(camp.seed, 1u);
}

TEST(FaultCampaign, ParsesFromJson)
{
    const JsonValue j = JsonValue::parse(R"({
        "seed": 99,
        "stuckCellRate": 0.01,
        "stuckAtOneFraction": 0.25,
        "transientUpsetRate": 1e-3,
        "saturationRate": 0.5,
        "driftPerRead": 1e-7,
        "stuckColumnRate": 0.02,
        "deadCrossbarRate": 0.05,
        "forcedDeadBlock": 3
    })");
    const FaultCampaign camp = faultCampaignFromJson(j);
    EXPECT_EQ(camp.seed, 99u);
    EXPECT_DOUBLE_EQ(camp.stuckCellRate, 0.01);
    EXPECT_DOUBLE_EQ(camp.stuckAtOneFraction, 0.25);
    EXPECT_DOUBLE_EQ(camp.transientUpsetRate, 1e-3);
    EXPECT_DOUBLE_EQ(camp.saturationRate, 0.5);
    EXPECT_DOUBLE_EQ(camp.driftPerRead, 1e-7);
    EXPECT_DOUBLE_EQ(camp.stuckColumnRate, 0.02);
    EXPECT_DOUBLE_EQ(camp.deadCrossbarRate, 0.05);
    EXPECT_EQ(camp.forcedDeadBlock, 3);
    EXPECT_TRUE(camp.anyEnabled());
}

TEST(FaultCampaign, RejectsUnknownKeysAndBadRates)
{
    EXPECT_THROW(
        faultCampaignFromJson(JsonValue::parse(R"({"typo": 1})")),
        FatalError);
    EXPECT_THROW(faultCampaignFromJson(
                     JsonValue::parse(R"({"stuckCellRate": 1.5})")),
                 FatalError);
    EXPECT_THROW(faultCampaignFromJson(JsonValue::parse(
                     R"({"transientUpsetRate": -0.1})")),
                 FatalError);
}

TEST(FaultCampaign, ExperimentSeedInheritance)
{
    // Top-level seed flows into the campaign...
    const ExperimentConfig a = configFromJson(JsonValue::parse(
        R"({"seed": 7, "fault": {"stuckCellRate": 0.01}})"));
    EXPECT_EQ(a.seed, 7u);
    EXPECT_EQ(a.fault.seed, 7u);
    // ...unless the campaign pins its own.
    const ExperimentConfig b = configFromJson(JsonValue::parse(
        R"({"seed": 7, "fault": {"seed": 42}})"));
    EXPECT_EQ(b.fault.seed, 42u);
    // ...and with no fault section at all it still inherits.
    const ExperimentConfig c =
        configFromJson(JsonValue::parse(R"({"seed": 11})"));
    EXPECT_EQ(c.fault.seed, 11u);
}

TEST(FaultInjector, PerUnitStreamsAreOrderIndependent)
{
    FaultCampaign camp;
    camp.seed = 123;
    const FaultInjector inj(camp);
    Rng a0 = inj.streamFor(0);
    Rng b0 = inj.streamFor(5);
    // Re-derive in the opposite order: identical streams.
    Rng b1 = inj.streamFor(5);
    Rng a1 = inj.streamFor(0);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(a0.next(), a1.next());
        EXPECT_EQ(b0.next(), b1.next());
    }
    // Different units and different seeds give different streams.
    Rng c = inj.streamFor(1);
    FaultCampaign camp2 = camp;
    camp2.seed = 124;
    Rng d = FaultInjector(camp2).streamFor(0);
    Rng a2 = inj.streamFor(0);
    EXPECT_NE(a2.next(), c.next());
    Rng a3 = inj.streamFor(0);
    EXPECT_NE(a3.next(), d.next());
}

TEST(FaultInjector, HwClusterStuckCellsFlowThroughAnCorrection)
{
    // Program a block, inject stuck cells bit-exactly, and check the
    // multiply still produces results while the AN path reports the
    // damage (corrected or uncorrectable words).
    constexpr unsigned size = 16;
    HwCluster::Config hwCfg;
    hwCfg.size = size;
    HwCluster hw(hwCfg);

    MatrixBlock blk;
    blk.size = size;
    Rng rng(7);
    for (unsigned r = 0; r < size; ++r)
        for (unsigned c = 0; c < size; ++c)
            if (rng.chance(0.5))
                blk.elems.push_back(
                    {static_cast<std::int32_t>(r),
                     static_cast<std::int32_t>(c),
                     rng.uniform(-4.0, 4.0)});
    hw.program(blk);

    FaultCampaign camp;
    camp.seed = 5;
    camp.stuckCellRate = 0.01;
    FaultInjector inj(camp);
    const FaultStats stats = inj.inject(hw, 0);
    EXPECT_GT(stats.stuckCells, 0u);
    EXPECT_GT(hw.scrub(), 0u); // readback sees the damaged words

    std::vector<double> x(size, 1.0), y(size);
    const HwClusterStats hwStats = hw.multiply(x, y);
    EXPECT_GT(hwStats.correctedWords + hwStats.uncorrectableWords,
              0u);
    for (double v : y)
        EXPECT_TRUE(std::isfinite(v));

    // A clean reprogram clears the stored damage.
    hw.program(blk);
    hw.attachInjector(nullptr);
    EXPECT_EQ(hw.scrub(), 0u);
    std::vector<double> yClean(size);
    const HwClusterStats clean = hw.multiply(x, yClean);
    EXPECT_EQ(clean.uncorrectableWords, 0u);
    EXPECT_EQ(clean.correctedWords, 0u);
}

TEST(FaultInjector, KilledSliceIsSeenByScrub)
{
    constexpr unsigned size = 8;
    HwCluster::Config hwCfg;
    hwCfg.size = size;
    // CIC inverts majority-one columns, which can leave a slice
    // physically all-zero (a dead array is then indistinguishable
    // from a healthy one -- correctly so). Disable it here so the
    // killed slice is guaranteed to hold current.
    hwCfg.cic = false;
    HwCluster hw(hwCfg);
    MatrixBlock blk;
    blk.size = size;
    for (unsigned i = 0; i < size; ++i)
        blk.elems.push_back({static_cast<std::int32_t>(i),
                             static_cast<std::int32_t>(i), 3.0});
    hw.program(blk);
    EXPECT_EQ(hw.scrub(), 0u);
    // Kill the MSB slice: by construction at least one stored word
    // has its leading one there.
    hw.killSlice(hw.matrixSlices() - 1);
    EXPECT_GT(hw.scrub(), 0u);
}

TEST(FaultInjector, StuckColumnPinsAdcReads)
{
    FaultCampaign camp;
    camp.seed = 9;
    camp.stuckColumnRate = 1.0; // force one stuck column
    constexpr unsigned size = 8;
    HwCluster::Config hwCfg;
    hwCfg.size = size;
    HwCluster hw(hwCfg);
    MatrixBlock blk;
    blk.size = size;
    for (unsigned i = 0; i < size; ++i)
        blk.elems.push_back({static_cast<std::int32_t>(i),
                             static_cast<std::int32_t>(i), 1.0});
    hw.program(blk);
    FaultInjector inj(camp);
    const FaultStats stats = inj.inject(hw, 0);
    EXPECT_EQ(stats.stuckColumns, 1u);
    bool any = false;
    for (unsigned s = 0; s < hw.matrixSlices() && !any; ++s)
        for (unsigned c = 0; c < size && !any; ++c)
            any = inj.columnStuck(s, c);
    EXPECT_TRUE(any);
    // Every read of a stuck column returns full scale, any count.
    for (unsigned s = 0; s < hw.matrixSlices(); ++s)
        for (unsigned c = 0; c < size; ++c)
            if (inj.columnStuck(s, c)) {
                EXPECT_EQ(inj.faultedRead(s, c, 0, size),
                          static_cast<std::int64_t>(size));
                EXPECT_EQ(inj.faultedRead(s, c, 3, size),
                          static_cast<std::int64_t>(size));
            }
}

TEST(FaultyOperator, CleanCampaignMatchesExactSpmv)
{
    const Csr m = spdMatrix(128, 3);
    const FaultCampaign camp; // fault-free
    FaultyAccelOperator op(m, camp);
    EXPECT_GT(op.blockCount(), 0u);
    std::vector<double> x(static_cast<std::size_t>(m.rows()));
    Rng rng(11);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    std::vector<double> y(x.size()), ref(x.size());
    op.apply(x, y);
    m.spmv(x, ref);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-12) << "row " << i;
    EXPECT_TRUE(op.scrub().empty());
    EXPECT_EQ(op.injected().total(), 0u);
}

TEST(FaultyOperator, DeadBlockDetectedByScrubAndDegraded)
{
    const Csr m = spdMatrix(128, 3);
    FaultCampaign camp;
    camp.seed = 21;
    camp.forcedDeadBlock = 0;
    FaultyAccelOperator op(m, camp);
    ASSERT_GT(op.blockCount(), 0u);
    EXPECT_TRUE(op.blockDead(0));
    EXPECT_EQ(op.injected().deadCrossbars, 1u);

    // The dead block is silent: apply() drops its contribution.
    std::vector<double> x(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> y(x.size()), ref(x.size());
    op.apply(x, y);
    m.spmv(x, ref);
    bool differs = false;
    for (std::size_t i = 0; i < y.size() && !differs; ++i)
        differs = std::fabs(y[i] - ref[i]) > 1e-12;
    EXPECT_TRUE(differs);

    // Scrub flags it; reprogram cannot heal dead hardware; degrade
    // reroutes it through the exact path.
    const std::vector<std::size_t> suspects = op.scrub();
    ASSERT_FALSE(suspects.empty());
    EXPECT_EQ(suspects.front(), 0u);
    EXPECT_FALSE(op.reprogram(0));
    op.degrade(0);
    EXPECT_TRUE(op.isDegraded(0));
    op.apply(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], ref[i], 1e-12);
    EXPECT_TRUE(op.scrub().empty()); // degraded blocks drop out
}

TEST(FaultyOperator, ReprogramClearsStuckCellsAndDrift)
{
    const Csr m = spdMatrix(128, 5);
    FaultCampaign camp;
    camp.seed = 31;
    camp.stuckCellRate = 0.05;
    camp.driftPerRead = 1e-6;
    FaultyAccelOperator op(m, camp);
    ASSERT_GT(op.injected().stuckCells, 0u);

    std::size_t damaged = op.blockCount();
    for (std::size_t k = 0; k < op.blockCount(); ++k)
        if (op.blockStuckCells(k) > 0) {
            damaged = k;
            break;
        }
    ASSERT_LT(damaged, op.blockCount());

    // Run some MVMs to accumulate drift, then scrub: the damaged
    // block must be flagged.
    std::vector<double> x(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> y(x.size());
    for (int i = 0; i < 4; ++i)
        op.apply(x, y);
    EXPECT_GT(op.blockReads(damaged), 0u);
    std::vector<std::size_t> suspects = op.scrub();
    EXPECT_TRUE(std::find(suspects.begin(), suspects.end(),
                          damaged) != suspects.end());

    // Stuck cells and drift are programming-time damage: a rewrite
    // with spare-row remap heals them.
    EXPECT_TRUE(op.reprogram(damaged));
    EXPECT_EQ(op.blockStuckCells(damaged), 0u);
    EXPECT_EQ(op.blockReads(damaged), 0u);
    EXPECT_FALSE(op.isDegraded(damaged));
}

TEST(FaultyOperator, InjectionIsDeterministic)
{
    const Csr m = spdMatrix(192, 9);
    FaultCampaign camp;
    camp.seed = 77;
    camp.stuckCellRate = 0.02;
    camp.transientUpsetRate = 0.05;
    camp.saturationRate = 0.2;
    camp.deadCrossbarRate = 0.1;
    camp.stuckColumnRate = 0.1;

    FaultyAccelOperator a(m, camp), b(m, camp);
    EXPECT_EQ(a.injected().stuckCells, b.injected().stuckCells);
    EXPECT_EQ(a.injected().deadCrossbars, b.injected().deadCrossbars);
    EXPECT_EQ(a.injected().stuckColumns, b.injected().stuckColumns);

    std::vector<double> x(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> ya(x.size()), yb(x.size());
    for (int i = 0; i < 8; ++i) {
        a.apply(x, ya);
        b.apply(x, yb);
        for (std::size_t j = 0; j < ya.size(); ++j) {
            // Bit-identical, including non-finite saturations.
            const bool same =
                (ya[j] == yb[j]) ||
                (std::isnan(ya[j]) && std::isnan(yb[j]));
            ASSERT_TRUE(same) << "iter " << i << " row " << j;
        }
    }
    EXPECT_EQ(a.runtimeStats().transientUpsets,
              b.runtimeStats().transientUpsets);
    EXPECT_EQ(a.runtimeStats().saturatedConversions,
              b.runtimeStats().saturatedConversions);
}

TEST(FaultyOperator, SaturationProducesNonFiniteOutputs)
{
    const Csr m = spdMatrix(128, 13);
    FaultCampaign camp;
    camp.seed = 41;
    camp.transientUpsetRate = 1.0;
    camp.saturationRate = 1.0; // every block MVM saturates
    FaultyAccelOperator op(m, camp);
    std::vector<double> x(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> y(x.size());
    op.apply(x, y);
    bool nonFinite = false;
    for (double v : y)
        nonFinite = nonFinite || !std::isfinite(v);
    EXPECT_TRUE(nonFinite);
    EXPECT_GT(op.runtimeStats().saturatedConversions, 0u);
}

} // namespace
} // namespace msc
