/**
 * @file
 * Tests for IEEE-754 decomposition, recomposition, fixed-point
 * conversion, and the exact dot product oracle.
 */

#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <limits>

#include "fp/float64.hh"
#include "util/random.hh"

namespace msc {
namespace {

TEST(Decompose, NormalNumber)
{
    const Fp64Parts p = decompose(1.5);
    EXPECT_FALSE(p.sign);
    EXPECT_EQ(p.exp, 0);
    EXPECT_EQ(p.mant, (std::uint64_t{3} << 51));
}

TEST(Decompose, NegativePowerOfTwo)
{
    const Fp64Parts p = decompose(-0x1.0p-10);
    EXPECT_TRUE(p.sign);
    EXPECT_EQ(p.exp, -10);
    EXPECT_EQ(p.mant, std::uint64_t{1} << 52);
}

TEST(Decompose, Zero)
{
    EXPECT_TRUE(decompose(0.0).isZero());
    EXPECT_TRUE(decompose(-0.0).isZero());
    EXPECT_TRUE(decompose(-0.0).sign);
}

TEST(Decompose, Subnormal)
{
    const Fp64Parts p = decompose(0x1.0p-1074);
    EXPECT_EQ(p.exp, -1022);
    EXPECT_EQ(p.mant, 1u);
    EXPECT_TRUE(p.isFinite());
}

TEST(Decompose, InfAndNan)
{
    EXPECT_TRUE(decompose(
        std::numeric_limits<double>::infinity()).inf);
    EXPECT_TRUE(decompose(
        std::numeric_limits<double>::quiet_NaN()).nan);
    EXPECT_FALSE(decompose(1.0).inf);
}

TEST(Compose, RoundTripRandomDoubles)
{
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        const int e = static_cast<int>(rng.range(-1070, 1020));
        const double v = std::ldexp(rng.uniform(1.0, 2.0), e) *
                         (rng.chance(0.5) ? -1.0 : 1.0);
        EXPECT_EQ(compose(decompose(v)), v);
    }
}

TEST(Compose, RoundTripSpecials)
{
    const double cases[] = {0.0, -0.0, 1.0, -1.0,
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::denorm_min(),
                            0x1.fffffffffffffp-1022};
    for (double v : cases) {
        const double r = compose(decompose(v));
        EXPECT_EQ(r, v);
        EXPECT_EQ(std::signbit(r), std::signbit(v));
    }
}

TEST(Compose, DenormalizedMantissaIsCanonicalized)
{
    // 3 * 2^(10-52) passed with a short mantissa.
    Fp64Parts p;
    p.mant = 3;
    p.exp = 10;
    EXPECT_EQ(compose(p), 3.0 * 0x1.0p-42);
}

TEST(FixedToDouble, ExactSmallValues)
{
    EXPECT_EQ(fixedToDouble(false, U256(5), 0), 5.0);
    EXPECT_EQ(fixedToDouble(true, U256(5), 0), -5.0);
    EXPECT_EQ(fixedToDouble(false, U256(5), -1), 2.5);
    EXPECT_EQ(fixedToDouble(false, U256(), 0), 0.0);
}

TEST(FixedToDouble, RoundsNearestEven)
{
    // 2^53 + 1 is not representable; nearest-even rounds down.
    U256 v;
    v.setBit(53);
    v.setBit(0);
    EXPECT_EQ(fixedToDouble(false, v, 0, RoundingMode::NearestEven),
              0x1.0p53);
    // 2^53 + 3 rounds up to 2^53 + 4.
    U256 w;
    w.setBit(53);
    w.setWord(0, w.word(0) | 3);
    EXPECT_EQ(fixedToDouble(false, w, 0, RoundingMode::NearestEven),
              0x1.0p53 + 4);
}

TEST(FixedToDouble, DirectedRoundingModes)
{
    // v = 2^54 + 2 = not representable (needs 54 bits; step is 4).
    U256 v;
    v.setBit(54);
    v.setWord(0, v.word(0) | 2);
    const double lo = 0x1.0p54;
    const double hi = 0x1.0p54 + 4;
    EXPECT_EQ(fixedToDouble(false, v, 0, RoundingMode::TowardZero), lo);
    EXPECT_EQ(fixedToDouble(false, v, 0, RoundingMode::TowardNegInf),
              lo);
    EXPECT_EQ(fixedToDouble(false, v, 0, RoundingMode::TowardPosInf),
              hi);
    EXPECT_EQ(fixedToDouble(true, v, 0, RoundingMode::TowardZero), -lo);
    EXPECT_EQ(fixedToDouble(true, v, 0, RoundingMode::TowardNegInf),
              -hi);
    EXPECT_EQ(fixedToDouble(true, v, 0, RoundingMode::TowardPosInf),
              -lo);
}

TEST(FixedToDouble, OverflowSaturatesPerMode)
{
    U256 big(1);
    const int scale = 1100; // 2^1100 overflows
    const double inf = std::numeric_limits<double>::infinity();
    const double maxf = std::numeric_limits<double>::max();
    EXPECT_EQ(fixedToDouble(false, big, scale,
                            RoundingMode::NearestEven), inf);
    EXPECT_EQ(fixedToDouble(true, big, scale,
                            RoundingMode::NearestEven), -inf);
    EXPECT_EQ(fixedToDouble(false, big, scale,
                            RoundingMode::TowardZero), maxf);
    EXPECT_EQ(fixedToDouble(false, big, scale,
                            RoundingMode::TowardNegInf), maxf);
    EXPECT_EQ(fixedToDouble(true, big, scale,
                            RoundingMode::TowardPosInf), -maxf);
}

TEST(FixedToDouble, SubnormalsAndUnderflow)
{
    // Exactly the smallest subnormal.
    EXPECT_EQ(fixedToDouble(false, U256(1), -1074), 0x1.0p-1074);
    // Half of it: ties to even -> 0.
    EXPECT_EQ(fixedToDouble(false, U256(1), -1075,
                            RoundingMode::NearestEven), 0.0);
    // Just above half rounds up.
    EXPECT_EQ(fixedToDouble(false, U256(3), -1076,
                            RoundingMode::NearestEven), 0x1.0p-1074);
    // Toward +inf: any nonzero tail rounds up for positive values.
    EXPECT_EQ(fixedToDouble(false, U256(1), -1080,
                            RoundingMode::TowardPosInf), 0x1.0p-1074);
    EXPECT_EQ(fixedToDouble(false, U256(1), -1080,
                            RoundingMode::TowardZero), 0.0);
    // A subnormal with reduced precision survives exactly.
    EXPECT_EQ(fixedToDouble(false, U256(0b101), -1074),
              0x1.4p-1072);
}

TEST(FixedToDouble, SubnormalRoundUpWidensHead)
{
    // 7 * 2^-1076: only one representable bit remains at this
    // magnitude (2^-1074); nearest rounds 0b111 up to 0b10, i.e.
    // 2^-1073. A previous implementation mis-scaled the widened
    // head and returned 2^-1074.
    EXPECT_EQ(fixedToDouble(false, U256(7), -1076,
                            RoundingMode::NearestEven),
              0x1.0p-1073);
    EXPECT_EQ(fixedToDouble(true, U256(7), -1076,
                            RoundingMode::NearestEven),
              -0x1.0p-1073);
    EXPECT_EQ(fixedToDouble(false, U256(7), -1076,
                            RoundingMode::TowardZero),
              0x1.0p-1074);
}

TEST(FixedToDouble, RandomRoundTripThroughDecompose)
{
    Rng rng(29);
    for (int i = 0; i < 2000; ++i) {
        const int e = static_cast<int>(rng.range(-1000, 1000));
        const double v = std::ldexp(rng.uniform(1.0, 2.0), e) *
                         (rng.chance(0.5) ? -1.0 : 1.0);
        const Fp64Parts p = decompose(v);
        const double r =
            fixedToDouble(p.sign, U256(p.mant), p.exp - 52);
        EXPECT_EQ(r, v);
    }
}

TEST(ExactDot, MatchesDoubleOnBenignData)
{
    // Values of similar magnitude with positive terms: plain double
    // accumulation happens to be exact here.
    const double a[] = {1.0, 2.0, 3.0, 4.0};
    const double x[] = {0.5, 0.25, 2.0, 1.0};
    EXPECT_EQ(exactDot(a, x, 4), 1.0 * 0.5 + 2 * 0.25 + 3 * 2 + 4 * 1);
}

TEST(ExactDot, CatastrophicCancellation)
{
    // (big * 1) + (1 * 1) - (big * 1) must yield exactly 1, which
    // naive left-to-right double accumulation gets wrong.
    const double big = 0x1.0p100;
    const double a[] = {big, 1.0, -big};
    const double x[] = {1.0, 1.0, 1.0};
    double naive = 0.0;
    for (int i = 0; i < 3; ++i)
        naive += a[i] * x[i];
    EXPECT_EQ(naive, 0.0); // demonstrates the failure of naive order
    EXPECT_EQ(exactDot(a, x, 3), 1.0);
}

TEST(ExactDot, ExactProductsNoRounding)
{
    // Each product is exact and representable; single rounding of the
    // exact sum must match long double style reference from fesetround
    // free computation.
    const double a[] = {0x1.0p-30, 0x1.0p30};
    const double x[] = {0x1.0p-30, 0x1.0p30};
    EXPECT_EQ(exactDot(a, x, 2), 0x1.0p60 + 0x1.0p-60);
}

TEST(ExactDot, SubnormalProducts)
{
    const double a[] = {0x1.0p-1000, -0x1.0p-1000};
    const double x[] = {0x1.0p-60, -0x1.0p-50};
    // 2^-1060 + 2^-1050: exactly representable as a subnormal.
    const double expect = 0x1.0p-1050 + 0x1.0p-1060;
    EXPECT_TRUE(expect > 0.0 && expect < 0x1.0p-1022);
    EXPECT_EQ(exactDot(a, x, 2), expect);
}

TEST(ExactDot, RoundingModeTowardNegInf)
{
    // Sum = 2^53 + 1: inexact in double. Truncation toward -inf keeps
    // 2^53 for the positive case.
    const double a[] = {0x1.0p53, 1.0};
    const double x[] = {1.0, 1.0};
    EXPECT_EQ(exactDot(a, x, 2, RoundingMode::TowardNegInf), 0x1.0p53);
    EXPECT_EQ(exactDot(a, x, 2, RoundingMode::TowardPosInf),
              0x1.0p53 + 2);
    // Negative counterpart flips which way truncation goes.
    const double an[] = {-0x1.0p53, -1.0};
    EXPECT_EQ(exactDot(an, x, 2, RoundingMode::TowardNegInf),
              -(0x1.0p53 + 2));
    EXPECT_EQ(exactDot(an, x, 2, RoundingMode::TowardPosInf),
              -0x1.0p53);
}

TEST(ExactDot, EmptyAndZero)
{
    EXPECT_EQ(exactDot(nullptr, nullptr, 0), 0.0);
    const double a[] = {0.0, 5.0};
    const double x[] = {7.0, 0.0};
    EXPECT_EQ(exactDot(a, x, 2), 0.0);
}

TEST(ExactDot, RejectsNonFinite)
{
    const double a[] = {std::numeric_limits<double>::infinity()};
    const double x[] = {1.0};
    EXPECT_THROW(exactDot(a, x, 1), FatalError);
}

TEST(ExactDot, MatchesFmaReferenceOnRandomData)
{
    // Against a high-precision reference built from long double FMA
    // accumulation over well-scaled inputs (exact in this range).
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        double a[16], x[16];
        long double ref = 0.0L;
        for (int i = 0; i < 16; ++i) {
            a[i] = rng.uniform(-1.0, 1.0);
            x[i] = rng.uniform(-1.0, 1.0);
            ref += static_cast<long double>(a[i]) * x[i];
        }
        const double got = exactDot(a, x, 16);
        // long double on x86 has 64-bit mantissa: the exact sum of 16
        // products fits well within 1 ulp of it.
        EXPECT_NEAR(got, static_cast<double>(ref),
                    std::fabs(static_cast<double>(ref)) * 1e-15 +
                    1e-300);
    }
}

} // namespace
} // namespace msc
