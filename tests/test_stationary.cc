/**
 * @file
 * Tests for the stationary solvers (Jacobi, Gauss-Seidel, SOR) and
 * the Jacobi spectral-radius estimator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/stationary.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"

namespace msc {
namespace {

double
relResidual(const Csr &a, std::span<const double> b,
            std::span<const double> x)
{
    std::vector<double> ax(b.size());
    a.spmv(x, ax);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        num += (b[i] - ax[i]) * (b[i] - ax[i]);
        den += b[i] * b[i];
    }
    return std::sqrt(num / den);
}

Csr
dominantSystem(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.5; // strongly dominant: all methods converge
    p.seed = seed;
    return genTiled(p);
}

TEST(Stationary, JacobiConvergesOnDominantSystem)
{
    const Csr a = dominantSystem(300, 3001);
    std::vector<double> b(300, 1.0), x(300, 0.0);
    const SolverResult r = jacobiIteration(a, b, x, {1e-10, 2000});
    EXPECT_TRUE(r.converged);
    EXPECT_LT(relResidual(a, b, x), 1e-8);
}

TEST(Stationary, GaussSeidelBeatsJacobi)
{
    const Csr a = dominantSystem(300, 3003);
    std::vector<double> b(300, 1.0);
    std::vector<double> xj(300, 0.0), xg(300, 0.0);
    const SolverResult rj = jacobiIteration(a, b, xj, {1e-10, 4000});
    const SolverResult rg = gaussSeidel(a, b, xg, {1e-10, 4000});
    ASSERT_TRUE(rj.converged);
    ASSERT_TRUE(rg.converged);
    EXPECT_LT(rg.iterations, rj.iterations);
}

TEST(Stationary, SorInterpolatesGaussSeidel)
{
    const Csr a = dominantSystem(300, 3005);
    std::vector<double> b(300, 1.0);
    std::vector<double> x1(300, 0.0), x2(300, 0.0);
    const SolverResult gs = gaussSeidel(a, b, x1, {1e-10, 4000});
    const SolverResult s = sor(a, b, x2, 1.0, {1e-10, 4000});
    EXPECT_EQ(gs.iterations, s.iterations); // omega = 1 identical
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(x1[i], x2[i]);
}

TEST(Stationary, SorRejectsBadOmega)
{
    const Csr a = Csr::identity(4);
    std::vector<double> b(4, 1.0), x(4, 0.0);
    EXPECT_THROW(sor(a, b, x, 0.0), FatalError);
    EXPECT_THROW(sor(a, b, x, 2.0), FatalError);
}

TEST(Stationary, AgreesWithKrylovSolution)
{
    const Csr a = dominantSystem(200, 3007);
    std::vector<double> b(200, 1.0);
    std::vector<double> xs(200, 0.0), xk(200, 0.0);
    gaussSeidel(a, b, xs, {1e-12, 5000});
    CsrOperator op(a);
    conjugateGradient(op, b, xk, {1e-12, 5000});
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(xs[i], xk[i], 1e-8 * (1 + std::fabs(xk[i])));
}

TEST(Stationary, SpectralRadiusPredictsConvergence)
{
    // Strongly dominant: rho(D^-1 (L+U)) < 1.
    const Csr good = dominantSystem(200, 3011);
    const double rhoGood = jacobiSpectralRadius(good);
    EXPECT_LT(rhoGood, 1.0);
    EXPECT_GT(rhoGood, 0.0);

    // 2x2 system with rho known analytically:
    // A = [[2, 1], [1, 2]] -> D^-1(L+U) has eigenvalues +-1/2.
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(0, 0, 2.0);
    coo.add(0, 1, 1.0);
    coo.add(1, 0, 1.0);
    coo.add(1, 1, 2.0);
    const double rho = jacobiSpectralRadius(Csr::fromCoo(coo), 200);
    EXPECT_NEAR(rho, 0.5, 1e-6);
}

TEST(Stationary, ZeroRhsShortCircuits)
{
    const Csr a = dominantSystem(64, 3013);
    std::vector<double> b(64, 0.0), x(64, 5.0);
    const SolverResult r = jacobiIteration(a, b, x);
    EXPECT_TRUE(r.converged);
    for (double v : x)
        EXPECT_EQ(v, 0.0);
}

TEST(Stationary, MissingDiagonalFatal)
{
    Coo coo;
    coo.rows = coo.cols = 2;
    coo.add(0, 0, 1.0);
    coo.add(1, 0, 1.0);
    const Csr a = Csr::fromCoo(coo);
    std::vector<double> b(2, 1.0), x(2, 0.0);
    EXPECT_THROW(jacobiIteration(a, b, x), FatalError);
    EXPECT_THROW(gaussSeidel(a, b, x), FatalError);
}

} // namespace
} // namespace msc
