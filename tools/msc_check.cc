/**
 * @file
 * Command-line driver of the differential oracle sweep (src/check).
 *
 * Usage:
 *   msc_check [--seed N] [--iters N] [--module SUBSTR] [--json FILE]
 *             [--timeout SEC] [--list]
 *
 * Runs every registered check module (or the ones matching --module)
 * for --iters seeded iterations each and prints the JSON report to
 * stdout. The report contains no timing, hostname, or thread count,
 * so two runs with identical seed/iters/module produce byte-identical
 * output at any MSC_THREADS setting -- `diff` is the regression test.
 * --timeout bounds the sweep's wall clock (ExecContext deadline): on
 * expiry the partial report is still written (with "interrupted":
 * true) and the exit status is 3, so CI sweeps cannot hang.
 * Exit status: 0 when every check held, 1 otherwise, 2 on usage
 * errors, 3 when the timeout expired.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "check/check.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--iters N] [--module SUBSTR] "
                 "[--json FILE] [--timeout SEC] [--list]\n",
                 argv0);
}

double
parseSeconds(const char *arg, const char *flag)
{
    char *end = nullptr;
    const double v = std::strtod(arg, &end);
    if (end == arg || *end != '\0' || !(v > 0.0)) {
        std::fprintf(stderr,
                     "msc_check: bad value for %s: %s "
                     "(want seconds > 0)\n",
                     flag, arg);
        std::exit(2);
    }
    return v;
}

std::uint64_t
parseCount(const char *arg, const char *flag)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0') {
        std::fprintf(stderr, "msc_check: bad value for %s: %s\n",
                     flag, arg);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    msc::check::Options opt;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "msc_check: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(arg, "--seed")) {
            opt.seed = parseCount(value("--seed"), "--seed");
        } else if (!std::strcmp(arg, "--iters")) {
            opt.iters = parseCount(value("--iters"), "--iters");
        } else if (!std::strcmp(arg, "--module")) {
            opt.module = value("--module");
        } else if (!std::strcmp(arg, "--json")) {
            jsonPath = value("--json");
        } else if (!std::strcmp(arg, "--timeout")) {
            opt.timeoutSec =
                parseSeconds(value("--timeout"), "--timeout");
        } else if (!std::strcmp(arg, "--list")) {
            for (const std::string &name :
                 msc::check::moduleNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "msc_check: unknown option %s\n",
                         arg);
            usage(argv[0]);
            return 2;
        }
    }
    if (!opt.module.empty()) {
        bool any = false;
        for (const std::string &name : msc::check::moduleNames())
            any = any || name.find(opt.module) != std::string::npos;
        if (!any) {
            std::fprintf(stderr,
                         "msc_check: no module matches '%s'\n",
                         opt.module.c_str());
            return 2;
        }
    }

    const msc::check::Report report = msc::check::runChecks(opt);
    const std::string json = report.toJson();
    std::fputs(json.c_str(), stdout);
    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "msc_check: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
        out << json;
    }
    if (report.interrupted) {
        std::fprintf(stderr,
                     "msc_check: timeout of %g s expired; report "
                     "is partial\n",
                     opt.timeoutSec);
        return 3;
    }
    return report.ok() ? 0 : 1;
}
