/**
 * @file
 * Pack a Matrix Market file into a binary artifact (sparse/binio):
 * the write-once half of the out-of-core pipeline. The blocking
 * plan is computed with the streaming preprocessor
 * (blocking/stream), so preprocessing memory is bounded by one
 * strip of rows regardless of matrix size.
 *
 * Usage:
 *   msc_pack [--config FILE] [--out FILE] [--no-plan] [--strip N]
 *            [--verify] matrix.mtx
 *
 * --config  experiment JSON; blocking comes from accelerator
 *           section, output path from io.matrixArtifact (if set)
 * --out     artifact path (default: matrix path + ".mscbin")
 * --no-plan pack the CSR only (loader recomputes placement)
 * --strip   strip height for the streaming preprocessor; must be a
 *           multiple of lcm(block sizes). 0 = minimal legal strip.
 * --verify  re-map the written artifact and compare it bitwise
 *           against the in-core parse + planBlocks path
 *
 * Exit status: 0 on success, 1 on a verification mismatch, 2 on
 * usage or input errors.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "blocking/blocking.hh"
#include "blocking/stream.hh"
#include "core/config.hh"
#include "sparse/binio.hh"
#include "sparse/matrix_market.hh"
#include "util/logging.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--config FILE] [--out FILE] "
                 "[--no-plan] [--strip N] [--verify] matrix.mtx\n",
                 argv0);
}

bool
sameCsr(const msc::Csr &a, const msc::Csr &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols() ||
        a.nnz() != b.nnz())
        return false;
    const auto arp = a.rowPtr(), brp = b.rowPtr();
    const auto aci = a.colIndex(), bci = b.colIndex();
    const auto av = a.values(), bv = b.values();
    return std::memcmp(arp.data(), brp.data(),
                       arp.size_bytes()) == 0 &&
           std::memcmp(aci.data(), bci.data(),
                       aci.size_bytes()) == 0 &&
           std::memcmp(av.data(), bv.data(), av.size_bytes()) == 0;
}

bool
samePlan(const msc::BlockPlan &a, const msc::BlockPlan &b)
{
    if (a.rows != b.rows || a.cols != b.cols ||
        a.blocks.size() != b.blocks.size() ||
        a.stats.totalNnz != b.stats.totalNnz ||
        a.stats.blockedNnz != b.stats.blockedNnz ||
        a.stats.unblockedNnz != b.stats.unblockedNnz ||
        a.stats.expRangeEvictions != b.stats.expRangeEvictions ||
        a.stats.blocksPerSize != b.stats.blocksPerSize)
        return false;
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        const msc::MatrixBlock &x = a.blocks[i];
        const msc::MatrixBlock &y = b.blocks[i];
        if (x.rowOrigin != y.rowOrigin ||
            x.colOrigin != y.colOrigin || x.size != y.size ||
            x.elems.size() != y.elems.size())
            return false;
        if (!x.elems.empty() &&
            std::memcmp(x.elems.data(), y.elems.data(),
                        x.elems.size() * sizeof(msc::Triplet)) != 0)
            return false;
    }
    return sameCsr(a.unblocked, b.unblocked);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string matrixPath, outPath, configPath;
    bool withPlan = true, verify = false;
    std::int32_t strip = 0;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "msc_pack: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(arg, "--config")) {
            configPath = value("--config");
        } else if (!std::strcmp(arg, "--out")) {
            outPath = value("--out");
        } else if (!std::strcmp(arg, "--no-plan")) {
            withPlan = false;
        } else if (!std::strcmp(arg, "--strip")) {
            strip = static_cast<std::int32_t>(
                std::strtol(value("--strip"), nullptr, 10));
        } else if (!std::strcmp(arg, "--verify")) {
            verify = true;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "msc_pack: unknown option %s\n",
                         arg);
            usage(argv[0]);
            return 2;
        } else if (matrixPath.empty()) {
            matrixPath = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (matrixPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        msc::BlockingConfig blocking;
        if (!configPath.empty()) {
            const msc::ExperimentConfig cfg =
                msc::loadExperimentConfig(configPath);
            blocking = cfg.accel.blocking;
            if (outPath.empty())
                outPath = cfg.io.matrixArtifact;
        }
        if (outPath.empty())
            outPath = msc::artifactSidecarPath(matrixPath);

        const msc::Csr m = msc::readMatrixMarket(matrixPath);

        msc::BlockPlan plan;
        if (withPlan) {
            plan = msc::planBlocksStreaming(
                m.rows(), m.cols(),
                msc::matrixMarketEntrySource(matrixPath), blocking,
                strip);
        }
        msc::writeArtifact(outPath, m, withPlan ? &plan : nullptr,
                           blocking);

        if (verify) {
            const auto art = msc::MappedArtifact::map(outPath);
            if (!sameCsr(art->matrixView(), m)) {
                std::fprintf(stderr,
                             "msc_pack: VERIFY FAILED: mapped "
                             "matrix differs from parse\n");
                return 1;
            }
            if (withPlan) {
                const msc::BlockPlan incore =
                    msc::planBlocks(m, blocking);
                if (!samePlan(art->decodePlan(), incore)) {
                    std::fprintf(stderr,
                                 "msc_pack: VERIFY FAILED: mapped "
                                 "plan differs from in-core "
                                 "planBlocks\n");
                    return 1;
                }
            }
        }

        std::printf("%s: %d x %d, %zu nnz -> %s (%zu blocks%s)\n",
                    matrixPath.c_str(), m.rows(), m.cols(), m.nnz(),
                    outPath.c_str(), plan.blocks.size(),
                    verify ? ", verified" : "");
        return 0;
    } catch (const msc::FatalError &e) {
        std::fprintf(stderr, "msc_pack: %s\n", e.what());
        return 2;
    }
}
