#!/bin/sh
# Per-module line-coverage table for mscsim.
#
# Usage: coverage_report.sh <build-dir> <source-dir>
#
# Expects a build configured with -DMSC_COVERAGE=ON (the "coverage"
# preset) whose tests have already run, so the .gcda counters exist.
# Works with either `gcov` (GCC) or `llvm-cov gcov` (Clang): `-i`
# produces gzipped JSON on GCC >= 9 and text intermediate format on
# older/LLVM tools; both are parsed below and folded into per-module
# line counts under src/.
set -eu

build=${1:?usage: coverage_report.sh <build-dir> <source-dir>}
src=${2:?usage: coverage_report.sh <build-dir> <source-dir>}

if command -v gcov >/dev/null 2>&1; then
    GCOV="gcov"
elif command -v llvm-cov >/dev/null 2>&1; then
    GCOV="llvm-cov gcov"
else
    echo "coverage_report: neither gcov nor llvm-cov found" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

find "$build" -name '*.gcda' | while read -r gcda; do
    (cd "$tmp" && $GCOV -i -b "$gcda" >/dev/null 2>&1) || continue
done

python3 - "$tmp" "$src" <<'EOF'
import gzip
import json
import os
import sys
from collections import defaultdict

tmp, src = sys.argv[1], sys.argv[2]
src = os.path.realpath(src)

# file -> {line: max-hit-count}; merging across TUs that include the
# same header keeps a line "covered" if any TU executed it.
lines = defaultdict(dict)


def absolute(path):
    p = os.path.realpath(path) if os.path.isabs(path) else None
    return p if p and p.startswith(src + os.sep) else None


def merge(path, lineno, count):
    prev = lines[path].get(lineno, 0)
    lines[path][lineno] = max(prev, count)


for name in os.listdir(tmp):
    full = os.path.join(tmp, name)
    if name.endswith(".gcov.json.gz"):
        # GCC >= 9 JSON intermediate format.
        with gzip.open(full, "rt", errors="replace") as f:
            data = json.load(f)
        for entry in data.get("files", []):
            path = absolute(entry.get("file", ""))
            if not path:
                continue
            for rec in entry.get("lines", []):
                merge(path, rec["line_number"], rec["count"])
    elif name.endswith(".gcov"):
        # Old text intermediate format: "file:" / "lcount:" records.
        current = None
        with open(full, errors="replace") as f:
            for raw in f:
                rec = raw.rstrip("\n").split(":")
                if rec[0] == "file":
                    current = absolute(rec[1])
                elif rec[0] == "lcount" and current:
                    parts = rec[1].split(",")
                    merge(current, int(parts[0]), int(parts[1]))

per_module = defaultdict(lambda: [0, 0])  # covered, total
for path, counts in lines.items():
    rel = os.path.relpath(path, src)
    parts = rel.split(os.sep)
    # src/solver/cg.cc -> "solver"; src/check/*.cc -> "check";
    # tests/x.cc -> "tests"
    module = parts[1] if parts[0] == "src" and len(parts) > 2 \
        else parts[0]
    bucket = per_module[module]
    bucket[0] += sum(1 for c in counts.values() if c > 0)
    bucket[1] += len(counts)

if not per_module:
    print("coverage_report: no .gcov data found -- did ctest run "
          "in the coverage build?", file=sys.stderr)
    sys.exit(1)

print(f"{'module':<16} {'covered':>8} {'lines':>8} {'pct':>7}")
tot_c = tot_t = 0
for module in sorted(per_module):
    c, t = per_module[module]
    tot_c += c
    tot_t += t
    print(f"{module:<16} {c:>8} {t:>8} {100.0 * c / t:>6.1f}%")
print(f"{'TOTAL':<16} {tot_c:>8} {tot_t:>8} "
      f"{100.0 * tot_c / tot_t:>6.1f}%")
EOF
