/**
 * @file
 * Reproduces Figure 13: solver iteration count as a function of bits
 * per cell and programming error, normalized to 1-bit cells with no
 * programming error, over 100 Monte Carlo runs.
 *
 * Paper shape: single-bit cells show virtually no sensitivity until
 * the error reaches 5%; multi-bit cells degrade earlier because the
 * same fractional error spans a larger share of the smaller level
 * separation.
 *
 * Usage: bench_fig13_progerr [config.json]
 * The optional config supplies the experiment seed; every Monte
 * Carlo stream derives from it, so runs are reproducible from the
 * config file alone.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/config.hh"
#include "device/noisy.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"

namespace {

using namespace msc;

Csr
testMatrix(std::uint64_t seed)
{
    TiledParams p;
    p.rows = 1536;
    p.tile = 48;
    p.tileDensity = 0.20;
    p.scatterPerRow = 0.5;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.01;
    p.values.tileExpSigma = 1.5;
    p.values.elemExpSigma = 0.8;
    p.seed = 4242 ^ seed;
    return genTiled(p);
}

std::uint64_t mcSeed = 1; //!< experiment seed from the config file

struct McResult
{
    int minIters = 0;
    double meanIters = 0.0;
    int maxIters = 0;
};

McResult
monteCarlo(const Csr &m, const CellParams &cell, int runs,
           int iterCap)
{
    McResult res;
    res.minIters = iterCap + 1;
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig cfg;
    cfg.tolerance = 1e-5;
    cfg.maxIterations = iterCap;
    for (int run = 0; run < runs; ++run) {
        NoisyCsrOperator op(
            m, cell,
            mcSeed * 17000 + static_cast<std::uint64_t>(run));
        std::vector<double> x(b.size(), 0.0);
        const SolverResult r = conjugateGradient(op, b, x, cfg);
        const int iters = r.converged ? r.iterations : iterCap;
        res.minIters = std::min(res.minIters, iters);
        res.maxIters = std::max(res.maxIters, iters);
        res.meanIters += iters;
    }
    res.meanIters /= runs;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace msc;
    setLogQuiet(true);
    if (argc > 1)
        mcSeed = loadExperimentConfig(argv[1]).seed;

    const Csr m = testMatrix(mcSeed);

    CellParams base;
    base.bitsPerCell = 1;
    base.rOn = 2e3;
    base.rOff = base.rOn * 1500.0;
    base.progErrorSigma = 0.0;
    const McResult clean = monteCarlo(m, base, 1, 100000);
    const double norm = clean.meanIters;
    const int cap = static_cast<int>(8 * norm);

    std::printf("Figure 13: iteration count vs bits/cell and "
                "programming error\n");
    std::printf("normalized to B=1, E=0 (= %.0f iterations); 100 "
                "Monte Carlo runs, cap 8x\n", norm);
    std::printf("%-18s | %8s %8s %8s\n", "config", "min", "mean",
                "max");
    std::printf("%.*s\n", 50,
                "--------------------------------------------------");
    for (unsigned bits : {1u, 2u}) {
        for (double err : {0.0, 0.01, 0.03, 0.05}) {
            CellParams cell = base;
            cell.bitsPerCell = bits;
            cell.progErrorSigma = err;
            const McResult r = monteCarlo(m, cell, 100, cap);
            std::printf("B=%u; E=%2.0f%%        | %8.2f %8.2f %8.2f\n",
                        bits, err * 100.0, r.minIters / norm,
                        r.meanIters / norm, r.maxIters / norm);
        }
    }
    std::printf("\n(paper: B=1 flat until E=5%%; B=2 degrades from "
                "E=3%%)\n");
    return 0;
}
