/**
 * @file
 * Reproduces Figure 7: sparsity and blocking patterns of two of the
 * evaluated matrices (Pres_Poisson and xenon1), rendered as ASCII
 * density maps plus the block-size census the figure's legend
 * reports. Both matrices block predominantly along the diagonal
 * band, Pres_Poisson almost entirely at large sizes.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "blocking/blocking.hh"
#include "sparse/suite.hh"
#include "util/logging.hh"

namespace {

using namespace msc;

constexpr int gridN = 44;

void
renderMatrix(const SuiteEntry &entry)
{
    const Csr m = buildSuiteMatrix(entry);
    const BlockPlan plan = planBlocks(m);

    std::printf("\n%s: %d x %d, %zu nonzeros, %.1f%% blocked\n",
                entry.name.c_str(), m.rows(), m.cols(), m.nnz(),
                100.0 * plan.stats.blockingEfficiency());

    // Density map.
    std::vector<double> density(gridN * gridN, 0.0);
    const double rScale = static_cast<double>(gridN) / m.rows();
    const double cScale = static_cast<double>(gridN) / m.cols();
    for (std::int32_t r = 0; r < m.rows(); ++r) {
        for (std::int32_t c : m.rowCols(r)) {
            const int gr = std::min(gridN - 1,
                                    static_cast<int>(r * rScale));
            const int gc = std::min(gridN - 1,
                                    static_cast<int>(c * cScale));
            density[gr * gridN + gc] += 1.0;
        }
    }
    const double maxD =
        *std::max_element(density.begin(), density.end());

    // Blocking map: dominant accepted block size per grid cell.
    std::vector<unsigned> blockSize(gridN * gridN, 0);
    for (const auto &b : plan.blocks) {
        const int gr = std::min(gridN - 1, static_cast<int>(
            (b.rowOrigin + b.size / 2) * rScale));
        const int gc = std::min(gridN - 1, static_cast<int>(
            (b.colOrigin + b.size / 2) * cScale));
        blockSize[gr * gridN + gc] =
            std::max(blockSize[gr * gridN + gc], b.size);
    }

    std::printf("  sparsity (left) and blocking (right; "
                "5=512 2=256 1=128 6=64):\n");
    const char shades[] = " .:+*#";
    for (int gr = 0; gr < gridN; ++gr) {
        std::printf("  |");
        for (int gc = 0; gc < gridN; ++gc) {
            const double d = density[gr * gridN + gc];
            int level = 0;
            if (d > 0.0) {
                level = 1 + static_cast<int>(4.0 * d / maxD);
                level = std::min(level, 5);
            }
            std::putchar(shades[level]);
        }
        std::printf("|   |");
        for (int gc = 0; gc < gridN; ++gc) {
            switch (blockSize[gr * gridN + gc]) {
              case 512:
                std::putchar('5');
                break;
              case 256:
                std::putchar('2');
                break;
              case 128:
                std::putchar('1');
                break;
              case 64:
                std::putchar('6');
                break;
              default:
                std::putchar(' ');
            }
        }
        std::printf("|\n");
    }

    std::printf("  block census: 512: %zu, 256: %zu, 128: %zu, "
                "64: %zu; unblocked nnz: %zu\n",
                plan.stats.blocksPerSize[0],
                plan.stats.blocksPerSize[1],
                plan.stats.blocksPerSize[2],
                plan.stats.blocksPerSize[3], plan.unblocked.nnz());
}

} // namespace

int
main()
{
    using namespace msc;
    setLogQuiet(true);
    std::printf("Figure 7: sparsity and blocking patterns\n");
    renderMatrix(suiteEntry("Pres_Poisson"));
    renderMatrix(suiteEntry("xenon1"));
    return 0;
}
