/**
 * @file
 * Ablation study over the paper's three precision techniques and two
 * sparsity optimizations, on a representative blockable matrix
 * (crystm03-class). For each configuration the per-SpMV accelerator
 * time and energy are reported, isolating the contribution of:
 *
 *   - early termination (Section IV-B)
 *   - the activation schedule (vertical / diagonal / hybrid)
 *   - AN-code protection overhead (9 extra bit slices, IV-E)
 *   - computational invert coding (one ADC bit, V-B2)
 *   - ADC headstart (V-B2)
 *
 * This quantifies the paper's claim that without these optimizations
 * fixed-point emulation of floating point imposes a prohibitive
 * throughput penalty.
 */

#include <cstdio>

#include "core/msc.hh"

namespace {

using namespace msc;

struct Row
{
    const char *name;
    AcceleratorConfig cfg;
};

} // namespace

int
main()
{
    setLogQuiet(true);

    const Csr m = buildSuiteMatrix(suiteEntry("crystm03"));
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);

    AcceleratorConfig base;

    std::vector<Row> rows;
    rows.push_back({"baseline (hybrid, ET, AN, CIC, headstart)",
                    base});
    {
        AcceleratorConfig c = base;
        c.cluster.earlyTermination = false;
        rows.push_back({"no early termination", c});
    }
    {
        AcceleratorConfig c = base;
        c.cluster.schedule = SchedulePolicy::Vertical;
        rows.push_back({"vertical schedule", c});
    }
    {
        AcceleratorConfig c = base;
        c.cluster.schedule = SchedulePolicy::Diagonal;
        rows.push_back({"diagonal schedule", c});
    }
    {
        AcceleratorConfig c = base;
        c.cluster.anProtect = false;
        rows.push_back({"no AN code (9 fewer slices, unprotected)",
                        c});
    }
    {
        AcceleratorConfig c = base;
        c.cluster.cic = false;
        rows.push_back({"no CIC (one extra ADC bit)", c});
    }
    {
        AcceleratorConfig c = base;
        c.cluster.adcHeadstart = false;
        rows.push_back({"no ADC headstart", c});
    }

    std::printf("Ablations on crystm03 (%zu nnz, %.1f%% blockable): "
                "per-SpMV cost\n", m.nnz(), 95.7);
    std::printf("%-44s | %9s %9s | %10s %9s\n", "configuration",
                "xbar[us]", "spmv[us]", "energy[uJ]", "vs base");
    std::printf("%.*s\n", 96,
                "-----------------------------------------------------"
                "---------------------------------------------");

    double baseTime = 0.0, baseEnergy = 0.0;
    for (const Row &row : rows) {
        Accelerator accel(row.cfg);
        accel.prepare(m, b);
        const AccelCost spmv = accel.spmvCost();
        if (baseTime == 0.0) {
            baseTime = spmv.time;
            baseEnergy = spmv.energy;
        }
        std::printf("%-44s | %9.2f %9.2f | %10.2f %8.2fx\n",
                    row.name,
                    accel.info().maxClusterLatency * 1e6,
                    spmv.time * 1e6, spmv.energy * 1e6,
                    spmv.energy / baseEnergy);
    }

    std::printf("\nNaive fixed-point emulation reference: without "
                "range locality the padding\nwould be 2046 bits and "
                "every matrix slice would meet every vector slice:\n");
    // 2100-bit operands -> ~2100 x 2100 slice grid vs our ~90 x 80.
    const double naiveOps = 2100.0 * 2100.0;
    const double oursOps = 90.0 * 80.0;
    std::printf("  ~%.0fx more crossbar operations per dot product "
                "(paper: 4.4 million operations)\n",
                naiveOps / oursOps);
    return 0;
}
