/**
 * @file
 * Reproduces Table II: the evaluated matrices with their nonzero
 * counts, rows, nonzeros per row, and blocking efficiency.
 *
 * The matrices are regenerated synthetically at reduced scale (see
 * DESIGN.md); the paper's full-scale reference values are printed
 * alongside for comparison. The "Blocked" column is the measured
 * output of the blocking preprocessor on the regenerated matrix and
 * is the quantity the reproduction aims to match.
 */

#include <cstdio>
#include <vector>

#include "blocking/blocking.hh"
#include "sparse/stats.hh"
#include "sparse/suite.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    // Generate + block every matrix once, in parallel; print in
    // suite order afterwards.
    const auto &entries = suiteMatrices();
    std::vector<MatrixStats> stats(entries.size());
    std::vector<BlockPlan> plans(entries.size());
    parallelFor(entries.size(), [&](std::size_t i) {
        const Csr m = buildSuiteMatrix(entries[i]);
        stats[i] = computeStats(m);
        plans[i] = planBlocks(m);
    });

    std::printf("Table II: evaluated matrices (SPD on top)\n");
    std::printf("%-16s %9s %8s %8s | %8s %8s | %8s %8s %8s\n",
                "Matrix", "NNZ", "Rows", "NNZ/Row",
                "Blocked", "paper", "visits/NNZ", "expRange",
                "evicted");
    std::printf("%.*s\n", 110,
                "-----------------------------------------------------"
                "---------------------------------------------------");

    for (std::size_t i = 0; i < entries.size(); ++i) {
        const MatrixStats &st = stats[i];
        const BlockPlan &plan = plans[i];
        std::printf(
            "%-16s %9zu %8d %8.1f | %7.1f%% %7.1f%% | %8.2f %8d %8zu\n",
            entries[i].name.c_str(), st.nnz, st.rows,
            st.nnzPerRow,
            100.0 * plan.stats.blockingEfficiency(),
            entries[i].paperBlockedPct, plan.stats.visitsPerNnz(),
            st.expRange, plan.stats.expRangeEvictions);
    }

    std::printf("\nBlock size census per matrix "
                "(counts at 512/256/128/64):\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BlockPlan &plan = plans[i];
        std::printf("  %-16s %6zu %6zu %6zu %6zu\n",
                    entries[i].name.c_str(),
                    plan.stats.blocksPerSize[0],
                    plan.stats.blocksPerSize[1],
                    plan.stats.blocksPerSize[2],
                    plan.stats.blocksPerSize[3]);
    }
    return 0;
}
