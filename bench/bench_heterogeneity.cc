/**
 * @file
 * Heterogeneous vs homogeneous crossbar substrates (Section V-B).
 *
 * The paper's central sparsity claim: a mix of crossbar sizes
 * captures more nonzeros at better latency/energy than any single
 * size. This bench re-places four structurally different matrices
 * onto Table I's heterogeneous mix and onto homogeneous all-512,
 * all-256, all-128, and all-64 substrates with (approximately) the
 * same total cell capacity, comparing blocking coverage and per-SpMV
 * cost.
 */

#include <cstdio>

#include "core/msc.hh"

namespace {

using namespace msc;

AcceleratorConfig
homogeneous(unsigned size)
{
    AcceleratorConfig cfg;
    // Table I capacity: 2*512 + 4*256 + 6*128 + 8*64 = 3328 rows of
    // cells per bank; give the homogeneous substrate the same.
    const unsigned clustersPerBank = 3328 / size;
    cfg.clustersPerBank = {{size, clustersPerBank}};
    // Blocking may only use sizes the substrate has.
    cfg.blocking.sizes = {size};
    return cfg;
}

void
evaluate(const char *name, const Csr &m,
         const std::vector<double> &b)
{
    std::printf("\n%s (%zu nnz):\n", name, m.nnz());
    std::printf("  %-18s %9s %10s %12s %12s\n", "substrate",
                "blocked", "placed", "spmv[us]", "energy[uJ]");

    struct Sub
    {
        const char *label;
        AcceleratorConfig cfg;
    };
    std::vector<Sub> subs;
    subs.push_back({"heterogeneous", AcceleratorConfig{}});
    subs.push_back({"all-512", homogeneous(512)});
    subs.push_back({"all-256", homogeneous(256)});
    subs.push_back({"all-128", homogeneous(128)});
    subs.push_back({"all-64", homogeneous(64)});

    for (auto &sub : subs) {
        Accelerator accel(sub.cfg);
        const PrepareResult prep = accel.prepare(m, b);
        const double blockedPct = prep.blocking.totalNnz == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(prep.blocking.totalNnz) -
                   prep.csrNnz) /
                  prep.blocking.totalNnz;
        std::printf("  %-18s %8.1f%% %10zu %12.2f %12.2f\n",
                    sub.label, blockedPct, prep.placedBlocks,
                    prep.spmv.time * 1e6, prep.spmv.energy * 1e6);
    }
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // Four structural classes from Table II.
    for (const char *name :
         {"Pres_Poisson", "torso2", "GaAsH6", "bcircuit"}) {
        const SuiteEntry &entry = suiteEntry(name);
        const Csr m = buildSuiteMatrix(entry);
        std::vector<double> b(static_cast<std::size_t>(m.rows()),
                              1.0);
        evaluate(name, m, b);
    }

    std::printf("\n=> no single size wins everywhere: large-only "
                "substrates waste column scans on thin\n   bands, "
                "small-only substrates fragment dense regions; the "
                "heterogeneous mix tracks the\n   best homogeneous "
                "choice per matrix (Section V-B).\n");
    return 0;
}
