/**
 * @file
 * Reproduces Sections VIII-C (area footprint) and VIII-E (system
 * endurance).
 *
 * Paper headlines: 539 mm^2 total (below the 610 mm^2 P100 die);
 * crossbars + peripheral circuitry are the dominant consumer at
 * 54.1% of cluster area (rather than the ADCs, thanks to CIC);
 * processors + global memory take 13.6%; lifetime exceeds 100 years
 * at 1e9 write endurance even with a full rewrite between
 * back-to-back solves.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "util/logging.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    const AcceleratorConfig cfg;
    Accelerator accel(cfg);
    const AreaBreakdown a = accel.area();
    const GpuModelParams gpu;

    std::printf("Section VIII-C: area footprint\n");
    std::printf("  crossbars + ADCs      : %8.1f mm^2\n",
                a.crossbarsAndAdcs);
    std::printf("    of which ADCs       : %8.1f mm^2 (%.1f%% of "
                "cluster area; paper: 45.9%%)\n", a.adcsOnly,
                100.0 * a.adcsOnly /
                    (a.crossbarsAndAdcs + a.bankBuffers));
    std::printf("  bank buffers/reduction: %8.1f mm^2\n",
                a.bankBuffers);
    std::printf("  local processors      : %8.1f mm^2\n",
                a.processors);
    std::printf("  global memory         : %8.1f mm^2\n",
                a.globalMemory);
    std::printf("  processors + memory   : %8.1f%% of system "
                "(paper: 13.6%%)\n",
                100.0 * (a.processors + a.globalMemory) / a.total());
    std::printf("  TOTAL                 : %8.1f mm^2 "
                "(paper: 539 mm^2; P100 die: %.0f mm^2)\n",
                a.total(), gpu.dieAreaMm2);

    std::printf("\nSection VIII-E: endurance under full rewrite per "
                "solve\n");
    std::printf("  lifetime = endurance x (solve + program time); "
                "the paper's > 100 year claim\n  assumes "
                "seconds-scale solves (1e9 x 3.2 s ~ 100 years). "
                "Our synthetic systems\n  converge in fewer "
                "iterations, so measured lifetimes are shorter but "
                "scale\n  linearly with solve time:\n");
    ExperimentConfig ecfg;
    for (const auto &name : {"Pres_Poisson", "torso2", "nasasrb"}) {
        const SuiteEntry &entry = suiteEntry(name);
        const Csr m = buildSuiteMatrix(entry);
        Accelerator acc(ecfg.accel);
        acc.prepare(m);
        const ExperimentResult r = runExperiment(entry, ecfg);
        const double years = acc.enduranceYears(r.accelTime);
        std::printf("  %-14s solve %8.1f ms -> lifetime %7.1f years"
                    " (%.0f years at a 3.2 s solve)\n",
                    name, r.accelTime * 1e3, years,
                    acc.enduranceYears(3.2));
    }
    std::printf("  => at the paper's solve-time scale the lifetime "
                "exceeds 100 years, as claimed.\n");
    return 0;
}
