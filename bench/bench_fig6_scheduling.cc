/**
 * @file
 * Reproduces Figure 6: the three crossbar activation scheduling
 * policies on the paper's 4x4 slice-grid example (termination after
 * significance >= 2), then at the full 127x118 operand scale across
 * a sweep of termination points, showing the energy/latency
 * trade-off (diagonal fewest activations, vertical fewest steps,
 * hybrid in between).
 */

#include <cstdio>

#include "cluster/schedule.hh"

namespace {

void
printRow(const char *name, const msc::ActivationSchedule &sched,
         unsigned threshold)
{
    const auto cost = sched.costForThreshold(threshold);
    std::printf("  %-9s: %3llu activations over %3llu time steps\n",
                name,
                static_cast<unsigned long long>(cost.activations),
                static_cast<unsigned long long>(cost.timeSteps));
}

} // namespace

int
main()
{
    using namespace msc;

    std::printf("Figure 6: scheduling policies on the 4x4 example, "
                "termination at significance 2\n");
    std::printf("  (paper: vertical 16/4, diagonal 13/5, "
                "hybrid 14/4)\n");
    const ActivationSchedule v4(4, 4, SchedulePolicy::Vertical);
    const ActivationSchedule d4(4, 4, SchedulePolicy::Diagonal);
    const ActivationSchedule h4(4, 4, SchedulePolicy::Hybrid, 2);
    printRow("vertical", v4, 2);
    printRow("diagonal", d4, 2);
    printRow("hybrid", h4, 2);

    std::printf("\nFull-scale grid (127 matrix slices x 118 vector "
                "slices), sweep of termination points:\n");
    std::printf("%10s | %12s %8s | %12s %8s | %12s %8s\n",
                "threshold", "vert acts", "steps", "diag acts",
                "steps", "hyb acts", "steps");
    const ActivationSchedule v(127, 118, SchedulePolicy::Vertical);
    const ActivationSchedule d(127, 118, SchedulePolicy::Diagonal);
    const ActivationSchedule h(127, 118, SchedulePolicy::Hybrid, 2);
    for (unsigned thr : {0u, 60u, 120u, 160u, 200u, 230u}) {
        const auto cv = v.costForThreshold(thr);
        const auto cd = d.costForThreshold(thr);
        const auto ch = h.costForThreshold(thr);
        std::printf("%10u | %12llu %8llu | %12llu %8llu | %12llu "
                    "%8llu\n", thr,
                    static_cast<unsigned long long>(cv.activations),
                    static_cast<unsigned long long>(cv.timeSteps),
                    static_cast<unsigned long long>(cd.activations),
                    static_cast<unsigned long long>(cd.timeSteps),
                    static_cast<unsigned long long>(ch.activations),
                    static_cast<unsigned long long>(ch.timeSteps));
    }

    std::printf("\nHybrid skew sweep at threshold 160 (larger skew "
                "-> closer to vertical):\n");
    for (unsigned skew : {2u, 3u, 4u, 8u, 16u}) {
        const ActivationSchedule hs(127, 118, SchedulePolicy::Hybrid,
                                    skew);
        const auto c = hs.costForThreshold(160);
        std::printf("  skew %2u: %7llu activations over %4llu steps\n",
                    skew,
                    static_cast<unsigned long long>(c.activations),
                    static_cast<unsigned long long>(c.timeSteps));
    }
    return 0;
}
