/**
 * @file
 * Reproduces Figure 8: per-matrix speedup of the accelerator over
 * the Tesla P100 baseline on the iterative solvers (CG for SPD,
 * BiCG-STAB otherwise), plus the geometric mean.
 *
 * Paper headline: 10.3x geometric-mean speedup across the 20-matrix
 * set, with thermomech_TC and ns3Da routed to the GPU after the
 * blocking pass fails (costing < 3% each).
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/logging.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    ExperimentConfig cfg;

    std::printf("Figure 8: speedup over the GPU baseline\n");
    std::printf("%-16s %6s %9s %7s | %11s %11s | %8s %s\n",
                "Matrix", "solver", "iters", "blocked", "accel[ms]",
                "gpu[ms]", "speedup", "note");
    std::printf("%.*s\n", 100,
                "-----------------------------------------------------"
                "-----------------------------------------------");

    // The matrices are independent: fan them across the thread pool
    // (MSC_THREADS to pin the lane count) and print in suite order.
    std::vector<double> speedups;
    for (const ExperimentResult &r : runSuiteExperiments(cfg)) {
        speedups.push_back(r.speedup());
        std::printf(
            "%-16s %6s %9d %6.1f%% | %11.3f %11.3f | %7.2fx %s\n",
            r.name.c_str(), r.usedCg ? "CG" : "BiCG",
            r.solve.iterations,
            100.0 * r.blocking.blockingEfficiency(),
            r.accelTime * 1e3, r.gpuTime * 1e3, r.speedup(),
            r.gpuFallback ? "gpu-fallback"
                          : (r.solve.converged ? "" : "iter-cap"));
    }
    std::printf("%.*s\n", 100,
                "-----------------------------------------------------"
                "-----------------------------------------------");
    std::printf("%-16s G-MEAN speedup: %.2fx   (paper: 10.3x)\n", "",
                geometricMean(speedups));
    return 0;
}
