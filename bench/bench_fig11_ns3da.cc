/**
 * @file
 * Reproduces Figure 11 and Section VIII-F: why ns3Da does not block.
 *
 * Despite its relatively high density (82 nonzeros per row in the
 * original), ns3Da's values spread uniformly instead of clustering
 * into dense sub-blocks, so candidates at every size fail the
 * density threshold and nearly everything lands on the local
 * processor -- which is why the system routes this matrix to the
 * GPU after preprocessing.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "blocking/blocking.hh"
#include "sparse/suite.hh"
#include "util/logging.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    const SuiteEntry &entry = suiteEntry("ns3Da");
    const Csr m = buildSuiteMatrix(entry);
    const BlockPlan plan = planBlocks(m);

    std::printf("Figure 11 / Section VIII-F: ns3Da blocking "
                "analysis\n");
    std::printf("  %d x %d, %zu nnz (%.1f per row)\n", m.rows(),
                m.cols(), m.nnz(),
                static_cast<double>(m.nnz()) / m.rows());
    std::printf("  blocking efficiency: %.2f%% (paper: 3.2%%)\n",
                100.0 * plan.stats.blockingEfficiency());
    std::printf("  blocks: 512: %zu, 256: %zu, 128: %zu, 64: %zu\n",
                plan.stats.blocksPerSize[0],
                plan.stats.blocksPerSize[1],
                plan.stats.blocksPerSize[2],
                plan.stats.blocksPerSize[3]);

    // Candidate density census at each size: how many nonzeros the
    // best candidates capture vs what the threshold demands.
    BlockingConfig cfg;
    std::printf("\n  candidate census (density threshold = "
                "%.1f nnz per 64-row at each size):\n",
                cfg.densityFactor);
    for (unsigned s : cfg.sizes) {
        const std::size_t threshold = static_cast<std::size_t>(
            cfg.densityFactor * s * (static_cast<double>(s) / 64));
        std::map<std::pair<std::int32_t, std::int32_t>, std::size_t>
            cand;
        for (std::int32_t r = 0; r < m.rows(); ++r) {
            for (std::int32_t c : m.rowCols(r))
                ++cand[{r / static_cast<std::int32_t>(s),
                        c / static_cast<std::int32_t>(s)}];
        }
        std::size_t best = 0, passing = 0;
        for (const auto &[rc, n] : cand) {
            best = std::max(best, n);
            if (n >= threshold)
                ++passing;
        }
        std::printf("    size %3u: %7zu candidates, densest holds "
                    "%5zu nnz, threshold %6zu, passing: %zu\n",
                    s, cand.size(), best, threshold, passing);
    }

    std::printf("\n  => the uniform spread leaves every candidate "
                "below the density threshold;\n"
                "     the matrix is routed to the GPU after the "
                "(worst-case 4 x NNZ) blocking pass.\n");
    return 0;
}
