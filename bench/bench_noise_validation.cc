/**
 * @file
 * Cross-validation of the two device-noise fidelities.
 *
 * The Monte Carlo convergence figures (12/13) use a statistical
 * per-conversion error model (device/noisy.hh); the materialized
 * hardware cluster (cluster/hw_cluster.hh) can instead run every
 * column read through the analog ColumnReadModel. This bench
 * measures per-conversion misread rates on real blocks under both
 * paths for the paper's device corners and checks they tell the
 * same story: 1-bit cells clean at every range, 2-bit cells failing
 * deterministically at low range.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "cluster/hw_cluster.hh"
#include "device/noisy.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace msc;

/** Fraction of rows whose final result deviates, running the full
 *  hardware pipeline with analog reads. */
double
hwErrorRate(const CellParams &cell, unsigned size, Rng &rng)
{
    HwCluster::Config cfg;
    cfg.size = size;
    cfg.analogReads = true;
    cfg.cell = cell;
    HwCluster hw(cfg);

    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (rng.chance(0.3)) {
                b.elems.push_back(
                    {static_cast<std::int32_t>(r),
                     static_cast<std::int32_t>(c),
                     rng.uniform(0.5, 2.0) *
                         (rng.chance(0.5) ? -1.0 : 1.0)});
            }
        }
    }
    hw.program(b);
    std::vector<double> x(size);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    std::vector<double> y(size), ref(size, 0.0);
    Rng noise(rng.next());
    hw.multiply(x, y, &noise);
    for (unsigned i = 0; i < size; ++i) {
        std::vector<double> ar, xr;
        for (const auto &el : b.elems) {
            if (el.row == static_cast<std::int32_t>(i)) {
                ar.push_back(el.val);
                xr.push_back(x[static_cast<std::size_t>(el.col)]);
            }
        }
        ref[i] = ar.empty()
            ? 0.0
            : exactDot(ar.data(), xr.data(), ar.size(),
                       cfg.rounding);
    }
    unsigned bad = 0;
    for (unsigned i = 0; i < size; ++i)
        bad += (y[i] != ref[i]) ? 1 : 0;
    return static_cast<double>(bad) / size;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    constexpr unsigned size = 64;

    std::printf("Statistical noise model vs materialized hardware "
                "(analog reads), %ux%u blocks\n", size, size);
    std::printf("%-22s | %14s %12s | %16s\n", "device corner",
                "stat errProb", "stat mean",
                "hw wrong rows (rate)");
    std::printf("%.*s\n", 76,
                "-----------------------------------------------------"
                "-----------------------");

    struct Corner
    {
        const char *name;
        unsigned bits;
        double range;
        double progErr;
    };
    const Corner corners[] = {
        {"B=1 D=1500 E=0", 1, 1500.0, 0.0},
        {"B=1 D=750  E=0", 1, 750.0, 0.0},
        {"B=1 D=1500 E=5%", 1, 1500.0, 0.05},
        {"B=2 D=1500 E=0", 2, 1500.0, 0.0},
        {"B=2 D=300  E=0", 2, 300.0, 0.0},
    };

    Rng rng(777);
    for (const Corner &c : corners) {
        CellParams cell;
        cell.bitsPerCell = c.bits;
        cell.rOn = 2e3;
        cell.rOff = cell.rOn * c.range;
        cell.progErrorSigma = c.progErr;
        // Statistical model at this block's operating point.
        const auto conv =
            conversionError(cell, 0.40 * size, 2.0 + 10.0);
        double rate = 0.0;
        const int runs = 4;
        for (int runIdx = 0; runIdx < runs; ++runIdx)
            rate += hwErrorRate(cell, size, rng);
        rate /= runs;
        std::printf("%-22s | %14.3e %12.3f | %13.1f%%\n", c.name,
                    conv.errProb, conv.mean, 100.0 * rate);
    }

    std::printf("\n=> both fidelities agree: single-bit cells at "
                "Table I parameters run clean; error\n   rates rise "
                "together as the level separation shrinks "
                "(Section VIII-G).\n");
    return 0;
}
