/**
 * @file
 * Design-space exploration of crossbar sizing (Section V-A).
 *
 * Reproduces the interlocking trade-offs the paper derives:
 *   - peak throughput grows with crossbar size, but effective
 *     throughput only grows with captured nonzeros
 *     (d * M * N / T_mvm);
 *   - ADC energy per op ~ M N log2 N; conversion time ~ M log2(N+1);
 *   - ADC area/power scale exponentially with resolution, giving
 *     CIC's one-bit saving outsized leverage.
 *
 * Printed for block densities representative of the evaluated suite
 * (0.4%, 5%, 30%) across sizes 64..1024.
 */

#include <cstdio>

#include "xbar/model.hh"

int
main()
{
    using namespace msc;

    std::printf("Section V-A design space: crossbar sizing\n");
    std::printf("%6s %5s | %12s %12s %12s | %s\n", "N", "ADCb",
                "op lat[ns]", "op E[pJ]", "area[mm2]",
                "eff. throughput [GOP/s] at density 0.4%% / 5%% / "
                "30%%");
    std::printf("%.*s\n", 100,
                "-----------------------------------------------------"
                "-----------------------------------------------");
    for (unsigned n : {64u, 128u, 256u, 512u, 1024u}) {
        const XbarModel model(n);
        const double lat = model.opLatency();
        // Effective element throughput: d*M*N useful MACs per op.
        auto thr = [&](double d) {
            return d * n * n / lat / 1e9;
        };
        std::printf("%6u %5u | %12.1f %12.1f %12.5f | %10.2f "
                    "%10.2f %10.2f\n",
                    n, model.adcResolutionBits(), lat * 1e9,
                    model.opEnergy() * 1e12, model.area(),
                    thr(0.004), thr(0.05), thr(0.30));
    }

    std::printf("\nBanded matrices capture a fixed nonzero count "
                "per block row, so density falls\nas 1/N: energy "
                "per captured nonzero (pJ) and per-op latency vs "
                "size --\nwhy thin bands want small crossbars "
                "(the density-based blocking threshold):\n");
    std::printf("%6s | %10s |", "N", "lat[ns]");
    for (double k : {3.0, 9.0, 25.0})
        std::printf(" %4.0f/row |", k);
    std::printf("\n");
    for (unsigned n : {64u, 128u, 256u, 512u}) {
        const XbarModel model(n);
        std::printf("%6u | %10.1f |", n, model.opLatency() * 1e9);
        for (double k : {3.0, 9.0, 25.0}) {
            const double perNnz =
                model.opEnergy() * 1e12 / (k * n);
            std::printf(" %8.3f |", perNnz);
        }
        std::printf("\n");
    }

    std::printf("\nCIC leverage (one ADC bit, Section V-B2), "
                "N = 512:\n");
    XbarModelParams prm;
    const XbarModel withCic(512, prm, true);
    const XbarModel noCic(512, prm, false);
    std::printf("  op energy with CIC %.1f pJ vs without %.1f pJ "
                "(%.1f%% saved)\n", withCic.opEnergy() * 1e12,
                noCic.opEnergy() * 1e12,
                100.0 * (noCic.opEnergy() - withCic.opEnergy()) /
                    noCic.opEnergy());
    std::printf("  ADC area with CIC %.5f mm^2 vs without %.5f "
                "mm^2\n", withCic.adcArea(), noCic.adcArea());
    return 0;
}
