/**
 * @file
 * Fault-injection study through the AN correction path, on the
 * unified fault framework (Section IV-E and beyond).
 *
 * Part 1 drives the hardware-faithful cluster under increasing
 * stuck-cell densities and per-conversion transient-upset rates
 * drawn from a seeded FaultCampaign, and observes the correction
 * path end to end: corrected words, uncorrectable words, and whether
 * the final IEEE-754 results survive bit-exactly (the paper's
 * ">99.99% corrected" claim).
 *
 * Part 2 runs the self-healing solver runtime: a CG solve on the
 * fast functional operator with mid-solve transient upsets, stuck
 * cells, and one dead crossbar, reporting the RecoveryStats ladder
 * (scrub -> reprogram -> checkpoint restart -> degrade).
 *
 * Usage: bench_fault_injection [--smoke] [--trace out.json]
 *        [--metrics out.json] [config.json]
 * The optional JSON config supplies the experiment seed and fault
 * campaign (core/config); --smoke shrinks the sweep for CI.
 * --trace / --metrics enable telemetry and export the recovery
 * study's Chrome trace (chrome://tracing / Perfetto) and flat
 * metrics JSON.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/hw_cluster.hh"
#include "core/config.hh"
#include "fault/fault.hh"
#include "fault/faulty_operator.hh"
#include "fp/float64.hh"
#include "solver/resilient.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/telemetry.hh"

namespace {

using namespace msc;

MatrixBlock
randomBlock(Rng &rng, unsigned size)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(0.35))
                continue;
            b.elems.push_back(
                {static_cast<std::int32_t>(r),
                 static_cast<std::int32_t>(c),
                 std::ldexp(rng.uniform(1.0, 2.0),
                            static_cast<int>(rng.range(0, 14))) *
                     (rng.chance(0.5) ? -1.0 : 1.0)});
        }
    }
    return b;
}

void
hwClusterStudy(const ExperimentConfig &cfg, bool smoke)
{
    constexpr unsigned size = 32;
    const int runs = smoke ? 4 : 20;

    std::printf("Stuck cells + transient upsets through the AN "
                "correction path (Section IV-E)\n");
    std::printf("%12s %10s | %10s %10s %12s | %14s\n", "stuck rate",
                "upset rate", "corrected", "uncorr.", "exact rows",
                "runs");
    std::printf("%.*s\n", 78,
                "--------------------------------------------------"
                "----------------------------");

    const std::vector<std::pair<double, double>> points = smoke
        ? std::vector<std::pair<double, double>>{
              {0.0, 0.0}, {2e-3, 0.0}, {0.0, 1e-4}, {2e-3, 1e-4}}
        : std::vector<std::pair<double, double>>{
              {0.0, 0.0},   {5e-4, 0.0},  {2e-3, 0.0},
              {8e-3, 0.0},  {0.0, 1e-5},  {0.0, 1e-4},
              {2e-3, 1e-4}, {8e-3, 1e-3}};

    Rng dataRng(cfg.seed);
    for (const auto &[stuckRate, upsetRate] : points) {
        FaultCampaign camp = cfg.fault;
        camp.stuckCellRate = stuckRate;
        camp.transientUpsetRate = upsetRate;
        camp.saturationRate = 0.0;
        camp.deadCrossbarRate = 0.0;
        camp.forcedDeadBlock = -1;
        camp.stuckColumnRate = 0.0;

        std::uint64_t corrected = 0, uncorrectable = 0;
        std::uint64_t exactRows = 0, totalRows = 0;
        FaultInjector injector(camp);
        for (int run = 0; run < runs; ++run) {
            HwCluster::Config hwCfg;
            hwCfg.size = size;
            HwCluster hw(hwCfg);
            const MatrixBlock b = randomBlock(dataRng, size);
            hw.program(b);
            injector.inject(hw, static_cast<std::uint64_t>(run));
            std::vector<double> x(size);
            for (auto &v : x)
                v = dataRng.uniform(-2.0, 2.0);
            std::vector<double> y(size);
            const HwClusterStats stats = hw.multiply(x, y);
            corrected += stats.correctedWords;
            uncorrectable += stats.uncorrectableWords;
            // Reference.
            for (unsigned i = 0; i < size; ++i) {
                std::vector<double> ar, xr;
                for (const auto &el : b.elems) {
                    if (el.row == static_cast<std::int32_t>(i)) {
                        ar.push_back(el.val);
                        xr.push_back(x[static_cast<std::size_t>(
                            el.col)]);
                    }
                }
                const double ref = ar.empty()
                    ? 0.0
                    : exactDot(ar.data(), xr.data(), ar.size(),
                               hwCfg.rounding);
                ++totalRows;
                exactRows += (y[i] == ref) ? 1 : 0;
            }
        }
        std::printf(
            "%12g %10g | %10llu %10llu %10.2f%% | %6d x %u rows\n",
            stuckRate, upsetRate,
            static_cast<unsigned long long>(corrected),
            static_cast<unsigned long long>(uncorrectable),
            100.0 * static_cast<double>(exactRows) /
                static_cast<double>(totalRows),
            runs, size);
    }
    std::printf("\n");
}

void
recoveryStudy(const ExperimentConfig &cfg, bool smoke)
{
    std::printf("Self-healing solver runtime "
                "(detect -> correct -> reprogram -> degrade)\n");

    TiledParams gen;
    gen.rows = smoke ? 192 : 512;
    gen.tile = 16;
    gen.tileDensity = 0.4;
    gen.spd = true;
    gen.symmetricPattern = true;
    gen.diagDominance = 0.05;
    gen.seed = cfg.seed;
    const Csr m = genTiled(gen);

    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    SolverConfig scfg;
    scfg.tolerance = 1e-8;
    scfg.maxIterations = smoke ? 600 : 2000;

    // Fault-free reference.
    CsrOperator exact(m);
    std::vector<double> xRef(b.size(), 0.0);
    const SolverResult ref = conjugateGradient(exact, b, xRef, scfg);

    FaultCampaign camp = cfg.fault;
    if (!camp.anyEnabled()) {
        camp.stuckCellRate = 0.002;
        camp.transientUpsetRate = 0.01;
        camp.saturationRate = 0.1;
        camp.forcedDeadBlock = 0;
    }
    FaultyAccelOperator faulty(m, camp);
    ResilientSolver solver(faulty, SolverKind::Cg, scfg);
    std::vector<double> x(b.size(), 0.0);
    const SolverResult run = solver.solve(b, x);
    const RecoveryStats &rec = run.recovery;

    std::printf("  fault-free CG:  %4d iters, rel res %.2e\n",
                ref.iterations, ref.relResidual);
    std::printf("  resilient CG:   %4d iters, rel res %.2e, "
                "converged %s\n",
                run.iterations, run.relResidual,
                run.converged ? "yes" : "NO");
    std::printf("  injected: %llu stuck cells, %llu dead crossbars "
                "over %zu blocks\n",
                static_cast<unsigned long long>(
                    faulty.injected().stuckCells),
                static_cast<unsigned long long>(
                    faulty.injected().deadCrossbars),
                faulty.blockCount());
    std::printf("  events:   %llu NaN/Inf, %llu divergence, "
                "%llu stagnation\n",
                static_cast<unsigned long long>(rec.nanEvents),
                static_cast<unsigned long long>(
                    rec.divergenceEvents),
                static_cast<unsigned long long>(
                    rec.stagnationEvents));
    std::printf("  actions:  %llu scrubs, %llu reprograms "
                "(%llu failed), %llu restarts, %llu fallbacks, "
                "%llu blocks degraded\n",
                static_cast<unsigned long long>(rec.scrubs),
                static_cast<unsigned long long>(rec.reprograms),
                static_cast<unsigned long long>(
                    rec.reprogramFailures),
                static_cast<unsigned long long>(
                    rec.checkpointRestarts),
                static_cast<unsigned long long>(rec.fallbacks),
                static_cast<unsigned long long>(
                    rec.degradedBlocks));

    if (!run.converged)
        panic("bench_fault_injection: resilient solve failed to "
              "converge");
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    bool smoke = false;
    std::string tracePath, metricsPath;
    ExperimentConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--trace" && i + 1 < argc)
            tracePath = argv[++i];
        else if (arg.rfind("--trace=", 0) == 0)
            tracePath = arg.substr(8);
        else if (arg == "--metrics" && i + 1 < argc)
            metricsPath = argv[++i];
        else if (arg.rfind("--metrics=", 0) == 0)
            metricsPath = arg.substr(10);
        else
            cfg = loadExperimentConfig(argv[i]);
    }
    if (!tracePath.empty() || !metricsPath.empty()) {
        telemetry::Config tcfg;
        tcfg.enabled = true;
        tcfg.spans = !tracePath.empty();
        telemetry::configure(tcfg);
    }
    if (cfg.telemetry)
        telemetry::configure(*cfg.telemetry);

    hwClusterStudy(cfg, smoke);
    // Scope the exported observability to the recovery study: the
    // solve under a fault campaign is the trace worth reading.
    telemetry::reset();
    recoveryStudy(cfg, smoke);

    if (!tracePath.empty()) {
        std::ofstream out(tracePath);
        if (!out)
            fatal("bench_fault_injection: cannot open ", tracePath);
        telemetry::writeChromeTrace(out);
        std::printf("\ntrace written to %s\n", tracePath.c_str());
    }
    if (!metricsPath.empty()) {
        std::ofstream out(metricsPath);
        if (!out)
            fatal("bench_fault_injection: cannot open ",
                  metricsPath);
        telemetry::writeMetricsJson(out);
        std::printf("metrics written to %s\n", metricsPath.c_str());
    }

    std::printf("\n=> single upsets are absorbed by the AN code (the "
                "paper's >99.99%% claim); the\n   resilient runtime "
                "heals or degrades everything the code cannot "
                "absorb.\n");
    return 0;
}
