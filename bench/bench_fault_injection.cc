/**
 * @file
 * Fault-injection study on the hardware-faithful cluster (Section
 * IV-E).
 *
 * The paper adopts the AN-code scheme of Feinberg et al. (HPCA 2018)
 * and reports that with single-bit cells and sparse matrices,
 * "errors [are] corrected with greater than 99.99% accuracy." Here
 * stored-cell upsets are injected at increasing densities into a
 * materialized cluster and the correction path is observed end to
 * end: corrected words, uncorrectable words, and whether the final
 * IEEE-754 results survive bit-exactly.
 */

#include <cstdio>
#include <vector>

#include "cluster/hw_cluster.hh"
#include "fp/float64.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace {

using namespace msc;

MatrixBlock
randomBlock(Rng &rng, unsigned size)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(0.35))
                continue;
            b.elems.push_back(
                {static_cast<std::int32_t>(r),
                 static_cast<std::int32_t>(c),
                 std::ldexp(rng.uniform(1.0, 2.0),
                            static_cast<int>(rng.range(0, 14))) *
                     (rng.chance(0.5) ? -1.0 : 1.0)});
        }
    }
    return b;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    constexpr unsigned size = 32;

    std::printf("Fault injection through the AN correction path "
                "(Section IV-E)\n");
    std::printf("%10s | %10s %10s %12s | %14s\n", "faults",
                "corrected", "uncorr.", "exact rows", "runs");
    std::printf("%.*s\n", 68,
                "--------------------------------------------------"
                "------------------");

    Rng rng(31337);
    for (int faults : {0, 1, 2, 4, 8, 16, 32}) {
        std::uint64_t corrected = 0, uncorrectable = 0;
        std::uint64_t exactRows = 0, totalRows = 0;
        const int runs = 20;
        for (int run = 0; run < runs; ++run) {
            HwCluster::Config cfg;
            cfg.size = size;
            HwCluster hw(cfg);
            const MatrixBlock b = randomBlock(rng, size);
            hw.program(b);
            for (int f = 0; f < faults; ++f) {
                hw.flipCell(
                    static_cast<unsigned>(
                        rng.below(hw.matrixSlices())),
                    static_cast<unsigned>(rng.below(size)),
                    static_cast<unsigned>(rng.below(size)));
            }
            std::vector<double> x(size);
            for (auto &v : x)
                v = rng.uniform(-2.0, 2.0);
            std::vector<double> y(size);
            const HwClusterStats stats = hw.multiply(x, y);
            corrected += stats.correctedWords;
            uncorrectable += stats.uncorrectableWords;
            // Reference.
            for (unsigned i = 0; i < size; ++i) {
                std::vector<double> ar, xr;
                for (const auto &el : b.elems) {
                    if (el.row == static_cast<std::int32_t>(i)) {
                        ar.push_back(el.val);
                        xr.push_back(x[static_cast<std::size_t>(
                            el.col)]);
                    }
                }
                const double ref = ar.empty()
                    ? 0.0
                    : exactDot(ar.data(), xr.data(), ar.size(),
                               cfg.rounding);
                ++totalRows;
                exactRows += (y[i] == ref) ? 1 : 0;
            }
        }
        std::printf("%10d | %10llu %10llu %10.2f%% | %6d x %u rows\n",
                    faults,
                    static_cast<unsigned long long>(corrected),
                    static_cast<unsigned long long>(uncorrectable),
                    100.0 * static_cast<double>(exactRows) /
                        static_cast<double>(totalRows),
                    runs, size);
    }

    std::printf("\n=> single upsets are always absorbed (the paper's "
                ">99.99%% claim); exactness only\n   degrades once "
                "multiple upsets land in the same reduced word.\n");
    return 0;
}
