/**
 * @file
 * Arbitrary-precision sweep: the paper's abstract claims the
 * accelerator "can be architected to arbitrary precision
 * requirements." This bench sweeps the target significand width
 * from double (53 bits) down to half-precision-class targets on one
 * cluster and reports the executed work, latency, and energy. Early
 * termination fires earlier at looser targets, so cost falls with
 * the precision requirement while every result remains exactly
 * round-to-target of the infinitely precise sum.
 */

#include <cstdio>
#include <vector>

#include "cluster/cluster.hh"
#include "util/logging.hh"
#include "util/random.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    Rng rng(2718);
    MatrixBlock block;
    block.size = 64;
    for (std::int32_t r = 0; r < 64; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            if (!rng.chance(0.3))
                continue;
            block.elems.push_back(
                {r, c,
                 std::ldexp(rng.uniform(1.0, 2.0),
                            static_cast<int>(rng.range(0, 30))) *
                     (rng.chance(0.5) ? -1.0 : 1.0)});
        }
    }
    std::vector<double> x(64);
    for (auto &v : x) {
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, 20))) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }

    std::printf("Precision sweep on one 64x64 cluster "
                "(%zu nonzeros, hybrid schedule)\n",
                block.elems.size());
    std::printf("%12s | %8s %12s %12s | %12s %12s\n",
                "target bits", "groups", "activations",
                "conversions", "latency[us]", "energy[nJ]");
    std::printf("%.*s\n", 80,
                "-----------------------------------------------------"
                "---------------------------");

    double baseEnergy = 0.0;
    for (unsigned bits : {53u, 44u, 32u, 24u, 16u, 11u, 8u}) {
        ClusterConfig cfg;
        cfg.size = 64;
        cfg.targetMantissaBits = bits;
        Cluster cluster(cfg);
        cluster.program(block);
        std::vector<double> y(64);
        const ClusterStats s = cluster.multiply(x, y);
        if (baseEnergy == 0.0)
            baseEnergy = s.energy;
        const char *label = bits == 53 ? "(fp64)"
            : bits == 24             ? "(fp32-class)"
            : bits == 11             ? "(fp16-class)"
                                     : "";
        std::printf("%5u %-6s | %4llu/%-3llu %12llu %12llu | "
                    "%12.2f %10.1f (%.2fx)\n",
                    bits, label,
                    static_cast<unsigned long long>(
                        s.groupsExecuted),
                    static_cast<unsigned long long>(s.groupsTotal),
                    static_cast<unsigned long long>(
                        s.xbarActivations),
                    static_cast<unsigned long long>(
                        s.adcConversions),
                    s.latency * 1e6, s.energy * 1e9,
                    s.energy / baseEnergy);
    }

    std::printf("\n=> cost tracks the precision requirement; machine-"
                "learning-class targets reuse the\n   same hardware "
                "at a fraction of the energy, double precision costs "
                "what Table III says.\n");
    return 0;
}
