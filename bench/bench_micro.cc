/**
 * @file
 * google-benchmark micro suite for the core kernels: wide-integer
 * arithmetic, AN coding, alignment, binary crossbar reads, cluster
 * MVM, blocking preprocessing throughput, CSR SpMV, and the parallel
 * block fan-out (accelerator SpMV and the fault-injecting operator).
 * These back the throughput claims in the documentation (e.g. the
 * ~1.8x NNZ average preprocessing cost) with measured numbers.
 *
 * Perf-regression harness: `bench_micro --json out.json` writes the
 * per-kernel wall times, the worker-thread count, the matrix id
 * of every matrix-driven benchmark, and a `metrics` block holding
 * the telemetry counters captured during the run (enable with
 * MSC_TELEMETRY=metrics) to a machine-readable file, so successive
 * runs (and different MSC_THREADS settings) can be compared
 * mechanically with tools/perfdiff. All other flags pass through to
 * google-benchmark (e.g. --benchmark_filter=...).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "accel/accel.hh"
#include "ancode/ancode.hh"
#include "blocking/blocking.hh"
#include "sparse/binio.hh"
#include "sparse/matrix_market.hh"
#include "cluster/cluster.hh"
#include "cluster/hw_cluster.hh"
#include "fault/faulty_operator.hh"
#include "fixedpoint/align.hh"
#include "runtime/exec_context.hh"
#include "solver/solver.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"
#include "wideint/wideint.hh"
#include "xbar/crossbar.hh"

namespace {

using namespace msc;

void
bmWideAdd(benchmark::State &state)
{
    Rng rng(1);
    U256 a, b;
    a.setWord(0, rng.next());
    a.setWord(3, rng.next());
    b.setWord(1, rng.next());
    for (auto _ : state) {
        a += b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(bmWideAdd);

void
bmWideMul(benchmark::State &state)
{
    Rng rng(2);
    U128 a, b;
    a.setWord(0, rng.next());
    a.setWord(1, rng.next() >> 10);
    b.setWord(0, rng.next());
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.mulWide(b));
    }
}
BENCHMARK(bmWideMul);

void
bmAnEncodeCorrect(benchmark::State &state)
{
    const AnCode code;
    Rng rng(3);
    U128 v;
    v.setWord(0, rng.next());
    v.setWord(1, rng.next() >> 12);
    for (auto _ : state) {
        U256 w = code.encode(v);
        w.flipBit(static_cast<unsigned>(rng.below(120)));
        benchmark::DoNotOptimize(code.correct(w));
    }
}
BENCHMARK(bmAnEncodeCorrect);

void
bmAlignValues(benchmark::State &state)
{
    Rng rng(4);
    std::vector<double> vals(512);
    for (auto &v : vals) {
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, 40)));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(alignValues(vals));
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(bmAlignValues);

void
bmCrossbarColumnRead(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    Rng rng(5);
    BinaryCrossbar xbar(n, n);
    for (unsigned r = 0; r < n; ++r)
        for (unsigned c = 0; c < n; ++c)
            if (rng.chance(0.3))
                xbar.set(r, c);
    BitVec input(n);
    for (unsigned r = 0; r < n; ++r)
        if (rng.chance(0.5))
            input.set(r);
    unsigned col = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xbar.readColumn(col, input));
        col = (col + 1) % n;
    }
}
BENCHMARK(bmCrossbarColumnRead)->Arg(64)->Arg(512);

void
bmClusterMultiply(benchmark::State &state)
{
    Rng rng(6);
    ClusterConfig cfg;
    cfg.size = 64;
    Cluster cluster(cfg);
    MatrixBlock block;
    block.size = 64;
    for (std::int32_t r = 0; r < 64; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            if (rng.chance(0.2)) {
                block.elems.push_back({r, c,
                    rng.uniform(-2.0, 2.0)});
            }
        }
    }
    cluster.program(block);
    std::vector<double> x(64), y(64);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cluster.multiply(x, y));
    state.SetItemsProcessed(state.iterations() *
                            block.elems.size());
}
BENCHMARK(bmClusterMultiply);

/** Batched multi-RHS cluster MVM over a k-column panel: the same
 *  block and data distribution as bmClusterMultiply, so items/s here
 *  vs there is the per-RHS amortization factor of the shared
 *  contribution tables, schedules, and gate transposes. */
void
bmClusterMultiplyBatch(benchmark::State &state)
{
    const auto k = static_cast<unsigned>(state.range(0));
    Rng rng(6);
    ClusterConfig cfg;
    cfg.size = 64;
    Cluster cluster(cfg);
    MatrixBlock block;
    block.size = 64;
    for (std::int32_t r = 0; r < 64; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            if (rng.chance(0.2)) {
                block.elems.push_back({r, c,
                    rng.uniform(-2.0, 2.0)});
            }
        }
    }
    cluster.program(block);
    std::vector<double> x(64ull * k), y(64ull * k);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    for (auto _ : state) {
        cluster.multiply(std::span<const double>(x),
                         std::span<double>(y), k);
        benchmark::DoNotOptimize(y.data());
    }
    // Per-RHS normalization: nnz x k items per batched call.
    state.SetItemsProcessed(state.iterations() *
                            block.elems.size() * k);
}
BENCHMARK(bmClusterMultiplyBatch)->Arg(8);

/** Hardware-faithful cluster MVM: materialized bit-slice crossbars,
 *  noiseless digital reads (the common verification configuration). */
void
bmHwClusterMultiply(benchmark::State &state)
{
    Rng rng(12);
    HwCluster::Config cfg;
    cfg.size = 64;
    HwCluster cluster(cfg);
    MatrixBlock block;
    block.size = 64;
    for (std::int32_t r = 0; r < 64; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            if (rng.chance(0.2)) {
                block.elems.push_back({r, c,
                    rng.uniform(-2.0, 2.0)});
            }
        }
    }
    cluster.program(block);
    std::vector<double> x(64), y(64);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cluster.multiply(x, y));
    state.SetItemsProcessed(state.iterations() *
                            block.elems.size());
}
BENCHMARK(bmHwClusterMultiply);

/** Batched multi-RHS bit-slice MVM: the crossbar word flattening
 *  and inversion census are built once and reused across the panel. */
void
bmHwClusterMultiplyBatch(benchmark::State &state)
{
    const auto k = static_cast<unsigned>(state.range(0));
    Rng rng(12);
    HwCluster::Config cfg;
    cfg.size = 64;
    HwCluster cluster(cfg);
    MatrixBlock block;
    block.size = 64;
    for (std::int32_t r = 0; r < 64; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            if (rng.chance(0.2)) {
                block.elems.push_back({r, c,
                    rng.uniform(-2.0, 2.0)});
            }
        }
    }
    cluster.program(block);
    std::vector<double> x(64ull * k), y(64ull * k);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    for (auto _ : state) {
        cluster.multiply(std::span<const double>(x),
                         std::span<double>(y), k);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            block.elems.size() * k);
}
BENCHMARK(bmHwClusterMultiplyBatch)->Arg(8);

/** The shared benchmark matrix: large enough that the block
 *  fan-out has hundreds of independent work items. */
Csr
benchMatrix(std::uint64_t seed)
{
    TiledParams p;
    p.rows = 8192;
    p.tile = 48;
    p.tileDensity = 0.25;
    p.scatterPerRow = 1.0;
    p.seed = seed;
    return genTiled(p);
}

void
bmBlockingPreprocess(benchmark::State &state)
{
    const Csr m = benchMatrix(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(planBlocks(m));
    state.SetItemsProcessed(state.iterations() * m.nnz());
    state.SetLabel("tiled8192");
}
BENCHMARK(bmBlockingPreprocess);

/** Cold/warm artifact fixture: the tiled8192 matrix written once as
 *  Matrix Market text next to its packed sidecar, so bmColdStart and
 *  bmBinioLoad time the two halves of the same load against the same
 *  bytes. Files live for the process; successive runs overwrite. */
struct ColdWarmFixture
{
    std::string mtxPath;
    std::string artifactPath;
};

const ColdWarmFixture &
coldWarmFixture()
{
    static const ColdWarmFixture fx = [] {
        ColdWarmFixture f;
        f.mtxPath = "/tmp/msc_bench_tiled8192.mtx";
        const Csr m = benchMatrix(7);
        writeMatrixMarket(m, f.mtxPath);
        const BlockPlan plan = planBlocks(m);
        f.artifactPath = artifactSidecarPath(f.mtxPath);
        writeArtifact(f.artifactPath, m, &plan, BlockingConfig{});
        return f;
    }();
    return fx;
}

/** Cold start: Matrix Market text parse plus the blocking
 *  preprocessor -- everything a solve pays before the first SpMV
 *  when no artifact exists. Pair with bmBinioLoad: the ratio is the
 *  warm-start speedup the packed format buys. */
void
bmColdStart(benchmark::State &state)
{
    const ColdWarmFixture &fx = coldWarmFixture();
    std::size_t nnz = 0;
    for (auto _ : state) {
        const Csr m = readMatrixMarket(fx.mtxPath);
        const BlockPlan plan = planBlocks(m);
        nnz = m.nnz();
        benchmark::DoNotOptimize(plan.blocks.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(nnz));
    state.SetLabel("tiled8192");
}
BENCHMARK(bmColdStart);

/** Warm start: map the packed sidecar and decode the stored plan --
 *  the artifact fast path of loadMatrixFile. Validation (checksum
 *  over header fields and every section byte) is included, so this
 *  is the honest end-to-end warm load, not just the mmap call. */
void
bmBinioLoad(benchmark::State &state)
{
    const ColdWarmFixture &fx = coldWarmFixture();
    std::size_t nnz = 0;
    for (auto _ : state) {
        const auto art = MappedArtifact::map(fx.artifactPath);
        const BlockPlan plan = art->decodePlan();
        nnz = art->nnz();
        benchmark::DoNotOptimize(plan.blocks.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(nnz));
    state.SetLabel("tiled8192");
}
BENCHMARK(bmBinioLoad);

void
bmCsrSpmv(benchmark::State &state)
{
    const Csr m = benchMatrix(8);
    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    for (auto _ : state) {
        m.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
    state.SetLabel("tiled8192");
}
BENCHMARK(bmCsrSpmv);

/** Accelerator value-level SpMV: the placed-block loop runs through
 *  the thread pool, so this benchmark is the headline number for the
 *  parallel execution engine (compare runs at MSC_THREADS=1 vs N). */
void
bmAccelSpmv(benchmark::State &state)
{
    const Csr m = benchMatrix(9);
    Accelerator accel;
    accel.prepare(m);
    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    for (auto _ : state) {
        accel.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
    state.SetLabel("tiled8192");
    state.counters["threads"] = static_cast<double>(globalThreads());
    state.counters["blocks"] =
        static_cast<double>(accel.info().placedBlocks);
}
BENCHMARK(bmAccelSpmv);

/** Batched accelerator SpMM over a k-column panel: fans
 *  (placement, column-chunk) items over the pool and reuses the
 *  placed-block layout across columns. Items are per-RHS normalized
 *  (nnz x k), so items/s vs bmAccelSpmv is the batch gain. */
void
bmAccelSpmm(benchmark::State &state)
{
    const auto k = static_cast<unsigned>(state.range(0));
    const Csr m = benchMatrix(9);
    Accelerator accel;
    accel.prepare(m);
    const auto n = static_cast<std::size_t>(m.cols());
    std::vector<double> x(n * k, 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()) * k);
    for (auto _ : state) {
        accel.spmm(std::span<const double>(x),
                   std::span<double>(y), k);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * k);
    state.SetLabel("tiled8192");
    state.counters["threads"] = static_cast<double>(globalThreads());
    state.counters["blocks"] =
        static_cast<double>(accel.info().placedBlocks);
}
BENCHMARK(bmAccelSpmm)->Arg(8);

/** Fault-injecting operator apply: per-block fan-out plus the
 *  per-(apply, block) transient fault streams. */
void
bmFaultyOperatorApply(benchmark::State &state)
{
    const Csr m = benchMatrix(10);
    FaultCampaign camp;
    camp.seed = 11;
    camp.stuckCellRate = 1e-4;
    camp.transientUpsetRate = 1e-3;
    FaultyAccelOperator op(m, camp);
    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    for (auto _ : state) {
        op.apply(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
    state.SetLabel("tiled8192");
    state.counters["threads"] = static_cast<double>(globalThreads());
    state.counters["blocks"] =
        static_cast<double>(op.blockCount());
}
BENCHMARK(bmFaultyOperatorApply);

/** Worst observed cancel-to-return latency (microseconds) across
 *  the bmExecCancelLatency iterations; exported into the --json
 *  metrics block as exec.cancel_latency_us so perf baselines track
 *  the cancellation promptness bound alongside kernel times. */
double gCancelLatencyUs = 0.0;

/**
 * Cooperative-cancellation promptness: a controller thread fires the
 * CancelToken mid-solve and the benchmark measures how long the
 * solver takes to come back. The bound is one solver iteration (plus
 * scheduler wake-up), so this number is the service runtime's
 * preemption granularity on an iterative workload.
 */
void
bmExecCancelLatency(benchmark::State &state)
{
    TiledParams p;
    p.rows = 1024;
    p.tile = 32;
    p.tileDensity = 0.25;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = 13;
    const Csr m = genTiled(p);
    const std::size_t n = static_cast<std::size_t>(m.rows());
    CsrOperator op(m);
    std::vector<double> b(n, 1.0);
    std::vector<double> x(n, 0.0);

    double worstUs = 0.0;
    for (auto _ : state) {
        ExecContext ctx;
        CancelToken controller = ctx.token();
        std::chrono::steady_clock::time_point cancelAt;
        std::thread killer([&] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            cancelAt = std::chrono::steady_clock::now();
            controller.cancel();
        });
        SolverConfig cfg;
        cfg.tolerance = 0.0; // unreachable: only the cancel stops it
        cfg.maxIterations = 1 << 30;
        cfg.exec = &ctx;
        std::fill(x.begin(), x.end(), 0.0);
        const SolverResult r = conjugateGradient(op, b, x, cfg);
        const auto done = std::chrono::steady_clock::now();
        killer.join();
        benchmark::DoNotOptimize(r.iterations);
        worstUs = std::max(
            worstUs,
            std::chrono::duration<double, std::micro>(done - cancelAt)
                .count());
    }
    gCancelLatencyUs = std::max(gCancelLatencyUs, worstUs);
    state.counters["cancel_latency_us"] = worstUs;
}
BENCHMARK(bmExecCancelLatency);

/** Console output plus an in-memory capture of every finished run,
 *  dumped as JSON by main() when --json was requested. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    struct Entry
    {
        std::string name;
        std::string matrix; //!< report label; empty = no matrix
        double realTime = 0.0;
        std::string timeUnit;
        std::int64_t iterations = 0;
        double itemsPerSecond = 0.0;
    };

    std::vector<Entry> entries;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.error_occurred)
                continue;
            Entry e;
            e.name = run.benchmark_name();
            e.matrix = run.report_label;
            e.realTime = run.GetAdjustedRealTime();
            e.timeUnit = benchmark::GetTimeUnitString(run.time_unit);
            e.iterations = static_cast<std::int64_t>(run.iterations);
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                e.itemsPerSecond = it->second;
            entries.push_back(std::move(e));
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

/** Minimal JSON string escape (names and labels are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

bool
writeJson(const std::string &path,
          const std::vector<CaptureReporter::Entry> &entries)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_micro: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"threads\": %u,\n  \"benchmarks\": [\n",
                 globalThreads());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"matrix\": \"%s\", "
            "\"real_time\": %.6f, \"time_unit\": \"%s\", "
            "\"iterations\": %lld, \"items_per_second\": %.3f}%s\n",
            jsonEscape(e.name).c_str(), jsonEscape(e.matrix).c_str(),
            e.realTime, e.timeUnit.c_str(),
            static_cast<long long>(e.iterations), e.itemsPerSecond,
            i + 1 < entries.size() ? "," : "");
    }
    // Telemetry counters captured during the run (empty object when
    // telemetry is disabled); tools/perfdiff compares these along
    // with the wall times.
    const auto counters = telemetry::snapshotCounters();
    std::fprintf(f, "  ],\n  \"metrics\": {");
    bool wroteAny = false;
    for (std::size_t i = 0; i < counters.size(); ++i) {
        std::fprintf(f, "%s\n    \"%s\": %llu", wroteAny ? "," : "",
                     jsonEscape(counters[i].first).c_str(),
                     static_cast<unsigned long long>(
                         counters[i].second));
        wroteAny = true;
    }
    // Cancellation promptness (bmExecCancelLatency); perfdiff treats
    // metric drift as informational, so the jittery wall-clock value
    // never fails the smoke gate but stays visible in the diff.
    if (gCancelLatencyUs > 0.0) {
        std::fprintf(f, "%s\n    \"exec.cancel_latency_us\": %.3f",
                     wroteAny ? "," : "", gCancelLatencyUs);
        wroteAny = true;
    }
    std::fprintf(f, "%s}\n}\n", wroteAny ? "\n  " : "");
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip --json [path] / --json=path before google-benchmark sees
    // the argument list; everything else passes through.
    std::string jsonPath;
    std::vector<char *> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            jsonPath = argv[i] + 7;
        } else {
            args.push_back(argv[i]);
        }
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;

    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!jsonPath.empty() &&
        !writeJson(jsonPath, reporter.entries))
        return 1;
    return 0;
}
