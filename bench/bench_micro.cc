/**
 * @file
 * google-benchmark micro suite for the core kernels: wide-integer
 * arithmetic, AN coding, alignment, binary crossbar reads, cluster
 * MVM, blocking preprocessing throughput, and CSR SpMV. These back
 * the throughput claims in the documentation (e.g. the ~1.8x NNZ
 * average preprocessing cost) with measured numbers.
 */

#include <benchmark/benchmark.h>

#include "ancode/ancode.hh"
#include "blocking/blocking.hh"
#include "cluster/cluster.hh"
#include "fixedpoint/align.hh"
#include "sparse/gen.hh"
#include "util/random.hh"
#include "wideint/wideint.hh"
#include "xbar/crossbar.hh"

namespace {

using namespace msc;

void
bmWideAdd(benchmark::State &state)
{
    Rng rng(1);
    U256 a, b;
    a.setWord(0, rng.next());
    a.setWord(3, rng.next());
    b.setWord(1, rng.next());
    for (auto _ : state) {
        a += b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(bmWideAdd);

void
bmWideMul(benchmark::State &state)
{
    Rng rng(2);
    U128 a, b;
    a.setWord(0, rng.next());
    a.setWord(1, rng.next() >> 10);
    b.setWord(0, rng.next());
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.mulWide(b));
    }
}
BENCHMARK(bmWideMul);

void
bmAnEncodeCorrect(benchmark::State &state)
{
    const AnCode code;
    Rng rng(3);
    U128 v;
    v.setWord(0, rng.next());
    v.setWord(1, rng.next() >> 12);
    for (auto _ : state) {
        U256 w = code.encode(v);
        w.flipBit(static_cast<unsigned>(rng.below(120)));
        benchmark::DoNotOptimize(code.correct(w));
    }
}
BENCHMARK(bmAnEncodeCorrect);

void
bmAlignValues(benchmark::State &state)
{
    Rng rng(4);
    std::vector<double> vals(512);
    for (auto &v : vals) {
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, 40)));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(alignValues(vals));
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(bmAlignValues);

void
bmCrossbarColumnRead(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    Rng rng(5);
    BinaryCrossbar xbar(n, n);
    for (unsigned r = 0; r < n; ++r)
        for (unsigned c = 0; c < n; ++c)
            if (rng.chance(0.3))
                xbar.set(r, c);
    BitVec input(n);
    for (unsigned r = 0; r < n; ++r)
        if (rng.chance(0.5))
            input.set(r);
    unsigned col = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xbar.readColumn(col, input));
        col = (col + 1) % n;
    }
}
BENCHMARK(bmCrossbarColumnRead)->Arg(64)->Arg(512);

void
bmClusterMultiply(benchmark::State &state)
{
    Rng rng(6);
    ClusterConfig cfg;
    cfg.size = 64;
    Cluster cluster(cfg);
    MatrixBlock block;
    block.size = 64;
    for (std::int32_t r = 0; r < 64; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            if (rng.chance(0.2)) {
                block.elems.push_back({r, c,
                    rng.uniform(-2.0, 2.0)});
            }
        }
    }
    cluster.program(block);
    std::vector<double> x(64), y(64);
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cluster.multiply(x, y));
    state.SetItemsProcessed(state.iterations() *
                            block.elems.size());
}
BENCHMARK(bmClusterMultiply);

void
bmBlockingPreprocess(benchmark::State &state)
{
    TiledParams p;
    p.rows = 8192;
    p.tile = 48;
    p.tileDensity = 0.25;
    p.scatterPerRow = 1.0;
    p.seed = 7;
    const Csr m = genTiled(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(planBlocks(m));
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(bmBlockingPreprocess);

void
bmCsrSpmv(benchmark::State &state)
{
    TiledParams p;
    p.rows = 8192;
    p.tile = 48;
    p.tileDensity = 0.25;
    p.scatterPerRow = 1.0;
    p.seed = 8;
    const Csr m = genTiled(p);
    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()));
    for (auto _ : state) {
        m.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(bmCsrSpmv);

} // namespace

BENCHMARK_MAIN();
