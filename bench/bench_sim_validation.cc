/**
 * @file
 * Validates the closed-form kernel cost model against the
 * event-driven SpMV simulation (sim/spmv_sim.hh) on three
 * structurally different matrices, and reports the load-balance and
 * interrupt-backlog statistics only the event-driven replay can see.
 */

#include <cstdio>

#include "core/msc.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    std::printf("Closed-form vs event-driven SpMV time\n");
    std::printf("%-16s | %12s %12s %8s | %12s %10s\n", "Matrix",
                "closed[us]", "event[us]", "ratio", "backlog[ns]",
                "events");
    std::printf("%.*s\n", 84,
                "-----------------------------------------------------"
                "-------------------------------");

    for (const char *name : {"Pres_Poisson", "torso2", "venkat25"}) {
        const SuiteEntry &entry = suiteEntry(name);
        const Csr m = buildSuiteMatrix(entry);
        Accelerator accel;
        accel.prepare(m);
        const double closed = accel.spmvCost().time;
        const SpmvSimResult sim = accel.simulateSpmv();
        std::printf("%-16s | %12.2f %12.2f %7.2fx | %12.1f %10llu\n",
                    name, closed * 1e6, sim.totalTime * 1e6,
                    sim.totalTime / closed,
                    sim.maxInterruptQueue * 1e9,
                    static_cast<unsigned long long>(sim.events));
    }

    // Detailed stats report for one matrix.
    const Csr m = buildSuiteMatrix(suiteEntry("torso2"));
    Accelerator accel;
    accel.prepare(m);
    const SpmvSimResult sim = accel.simulateSpmv();
    std::printf("\n%s", formatSpmvSimStats(sim).c_str());
    std::printf("\n=> the closed-form model tracks the event-driven "
                "replay; the replay additionally\n   exposes "
                "interrupt serialization and per-bank load balance.\n");
    return 0;
}
