/**
 * @file
 * Reproduces Table I: the accelerator configuration, as instantiated
 * by the model defaults, plus the derived cluster-pool capacities.
 */

#include <cstdio>

#include "accel/accel.hh"
#include "xbar/model.hh"

int
main()
{
    using namespace msc;
    const AcceleratorConfig cfg;
    const Accelerator accel(cfg);
    const CellParams &cell = cfg.cluster.xbar.cell;

    std::printf("Table I: accelerator configuration\n");
    std::printf("  System   : %u banks, double-precision floating "
                "point,\n             fclk = %.1f GHz, 15 nm, "
                "Vdd = %.2f V\n",
                cfg.banks, cfg.cluster.xbar.fClkHz / 1e9,
                cfg.cluster.xbar.vdd);
    std::printf("  Bank     : ");
    for (const auto &[size, count] : cfg.clustersPerBank)
        std::printf("(%u) x %ux%u clusters  ", count, size, size);
    std::printf("+ 1 LEON3-class core @ %.1f GHz\n",
                cfg.proc.clockHz / 1e9);
    std::printf("  Cluster  : up to %u bit-slice crossbars "
                "(53-bit mantissa + sign + %u pad bits,\n"
                "             AN code A = %llu -> %u-bit operands)\n",
                fxp::encodedBits, fxp::maxPadBits,
                static_cast<unsigned long long>(
                    cfg.cluster.anConstant),
                fxp::encodedBits);
    for (const auto &[size, count] : cfg.clustersPerBank) {
        const XbarModel model(size, cfg.cluster.xbar,
                              cfg.cluster.cic);
        std::printf("  Crossbar : %3ux%-3u cells, %u-bit pipelined "
                    "SAR ADC (CIC), %u drivers\n",
                    size, size, model.adcResolutionBits(), 2 * size);
        (void)count;
    }
    std::printf("  Cell     : TaOx, Ron = %.0f kOhm, "
                "Roff = %.0f MOhm (range %.0f), Vread = %.1f V,\n"
                "             Ewrite = %.2f nJ, Twrite = %.2f ns, "
                "endurance %.0e writes\n",
                cell.rOn / 1e3, cell.rOff / 1e6, cell.dynamicRange(),
                cell.vRead, cell.writeEnergy * 1e9,
                cell.writeTime * 1e9, cell.writeEndurance);

    std::printf("\nDerived cluster pools (whole system):\n");
    for (const auto &[size, clusters] : accel.poolCapacity()) {
        std::printf("  %3ux%-3u : %5u clusters (%llu cell rows)\n",
                    size, size, clusters,
                    static_cast<unsigned long long>(clusters) * size);
    }
    return 0;
}
