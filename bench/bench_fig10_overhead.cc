/**
 * @file
 * Reproduces Figure 10: matrix preprocessing time and array write
 * (programming) time as a percentage of the total solve time on the
 * accelerator.
 *
 * Paper headline: under 20% across the set, generally falling as the
 * linear system grows; for large systems typically under 4%. Our
 * synthetic systems converge in fewer iterations than the originals
 * (hundreds to a few thousand), so overheads sit somewhat higher on
 * the fast-converging small matrices; the falling shape holds.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "util/logging.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    ExperimentConfig cfg;

    std::printf("Figure 10: setup overhead as %% of accelerator "
                "solve time\n");
    std::printf("%-16s %9s %9s | %10s %10s %9s\n", "Matrix", "rows",
                "iters", "write%", "preproc%", "total%");
    std::printf("%.*s\n", 76,
                "-----------------------------------------------------"
                "-----------------------");
    for (const ExperimentResult &r : runSuiteExperiments(cfg)) {
        if (r.gpuFallback) {
            std::printf("%-16s %9d %9d | %10s %10s %9s\n",
                        r.name.c_str(), r.stats.rows,
                        r.solve.iterations, "-", "-",
                        "gpu-fallback");
            continue;
        }
        const double writePct =
            100.0 * r.programTime / r.accelTime;
        const double prePct =
            100.0 * r.preprocessTime / r.accelTime;
        std::printf("%-16s %9d %9d | %9.2f%% %9.2f%% %8.2f%%\n",
                    r.name.c_str(), r.stats.rows,
                    r.solve.iterations, writePct, prePct,
                    100.0 * r.setupOverhead());
    }
    std::printf("\n(paper: < 20%% everywhere, < 4%% for large "
                "systems)\n");
    return 0;
}
