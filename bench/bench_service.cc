/**
 * @file
 * Closed-loop load study of the solver service (service/service.hh),
 * three phases:
 *
 * 1. Coalescing: a fixed micro workload of same-operator CG requests
 *    driven through the admission scheduler at a fixed concurrency,
 *    once with the batching window disabled (window = 1, sequential
 *    dispatch) and once with window = 8 (same-key requests coalesce
 *    into one lockstep panel per dispatch). The panel amortizes the
 *    cluster operator's per-iteration slice walk across columns, so
 *    the window-8 phase must deliver a wall-clock throughput
 *    multiple on identical bits.
 *
 * 2. Shard scaling: four tenants, each pinned to its own operator,
 *    with the operators seed-picked so their cache keys route to
 *    four distinct shards (key mod 4 = 0..3 -- which also balances
 *    them mod 2 and mod 1, so the same matrices serve every shard
 *    count in {1, 2, 4}). Each shard owns an independent
 *    accelerator, so throughput is requests over the *bottleneck*
 *    shard's accelerator-busy time; the bench rebuilds each
 *    operator's cost model (Accelerator::solveCost) and charges
 *    every dispatched solve to the shard the decision log says
 *    executed it. The modeled makespan is a pure function of the
 *    dispatch schedule -- deterministic across runs and honest on a
 *    single-core host, where wall clock cannot show device-level
 *    parallelism.
 *
 * 3. Fair share: a saturating tenant (10:1 offered load) against a
 *    light tenant at equal weights; while both stay backlogged each
 *    is entitled to half the dispatch stream, and the light tenant's
 *    observed share of the contended dispatch window is the metric
 *    (0.5 = perfect isolation).
 *
 * Request latency (submit -> terminal, microseconds) comes from the
 * service's own service.latency_us histogram; the cache-warm p50/p99
 * land in the --json metrics block as service.p50_latency_us /
 * service.p99_latency_us so the perf-smoke gate tracks them.
 *
 * Usage: bench_service [--smoke] [--json out.json]
 *                      [--requests N] [--outstanding N]
 *                      [--tenants N] [--window W] [--shards S]
 *   --smoke       shrink the workload for CI and exit non-zero when
 *                 the coalescing speedup falls under 2x, the 4-shard
 *                 modeled scaling falls under 2.5x, the light
 *                 tenant's fair share leaves [0.4, 0.6], or any
 *                 request fails
 *   --json        write the bench_micro-compatible baseline document
 *                 (tools/perfdiff diffs it against bench/baselines/)
 *   --requests    total requests per phase (default 64, smoke 16)
 *   --outstanding closed-loop concurrency = queue capacity
 *                 (default 8)
 *   --tenants     spread requests round-robin over N tenants
 *                 (default 1); each tenant gets a full ticket
 *                 budget, so this varies accounting, not admission
 *   --window      run ONE coalescing phase at this batching window
 *                 and print its row (for sweep scripts) instead of
 *                 the full study
 *   --shards      run ONE shard-scaling phase at this shard count
 *                 (with --tenants/--outstanding) and print its row;
 *                 shell loops over --shards {1,2,4} build the
 *                 scaling tables in EXPERIMENTS.md
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "accel/accel.hh"
#include "runtime/exec_context.hh"
#include "service/service.hh"
#include "sparse/gen.hh"
#include "util/random.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace {

using namespace msc;

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 32;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

std::vector<double>
seededRhs(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> b(n);
    for (double &v : b)
        v = 2.0 * rng.uniform() - 1.0;
    return b;
}

struct PhaseResult
{
    double seconds = 0.0;
    double requestsPerSec = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    unsigned solved = 0;
    unsigned failed = 0;
    std::uint64_t batches = 0;
    std::uint64_t coalescedBatches = 0;
};

/**
 * Closed loop at a fixed concurrency: submit @p outstanding
 * same-operator requests, pump the service dry, repeat until
 * @p total requests completed. The prepare cache is warmed before
 * the clock starts, so the phase measures steady-state dispatch +
 * solve, not the one-time placement build.
 */
PhaseResult
runPhase(const Csr &m, unsigned window, unsigned total,
         unsigned outstanding, unsigned tenants = 1)
{
    const std::size_t n = static_cast<std::size_t>(m.rows());
    OperatorConfig opCfg;
    opCfg.backend = ServiceBackend::ClusterBitExact;

    ServiceConfig cfg;
    cfg.workers = 0; // deterministic: the bench thread pumps
    cfg.scheduler.batchWindow = window;
    cfg.scheduler.queueCapacity = outstanding;
    cfg.scheduler.defaultTickets =
        static_cast<int>(outstanding);
    SolverService svc(cfg);

    // Cache warmup (also primes the telemetry cells).
    {
        SolveRequest req;
        req.tenant = "bench";
        req.matrix = &m;
        req.op = opCfg;
        req.b = seededRhs(n, 4000);
        req.tolerance = 1e-6;
        RequestHandle h = svc.submit(req);
        svc.runUntilIdle();
        if (h.wait().status != SolveStatus::Converged)
            return {};
    }
    telemetry::reset(); // warmup out of the latency histogram

    PhaseResult out;
    std::vector<RequestHandle> handles;
    handles.reserve(total);
    const auto t0 = std::chrono::steady_clock::now();
    unsigned submitted = 0;
    while (submitted < total) {
        const unsigned burst =
            std::min(outstanding, total - submitted);
        for (unsigned i = 0; i < burst; ++i) {
            SolveRequest req;
            req.tenant = tenants > 1
                ? "bench" + std::to_string((submitted + i) % tenants)
                : "bench";
            req.matrix = &m;
            req.op = opCfg;
            req.b = seededRhs(n, 4100 + submitted + i);
            req.tolerance = 1e-6;
            handles.push_back(svc.submit(req));
        }
        submitted += burst;
        svc.runUntilIdle();
    }
    const auto t1 = std::chrono::steady_clock::now();

    for (auto &h : handles) {
        const RequestResult &r = h.wait();
        if (r.status == SolveStatus::Converged)
            ++out.solved;
        else
            ++out.failed;
    }
    out.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.requestsPerSec =
        out.seconds > 0.0 ? out.solved / out.seconds : 0.0;
    for (const auto &h : telemetry::snapshotHistograms()) {
        if (h.name == "service.latency_us") {
            out.p50Us = telemetry::histogramQuantile(h, 0.5);
            out.p99Us = telemetry::histogramQuantile(h, 0.99);
        }
    }
    const ServiceStats st = svc.stats();
    out.batches = st.batches;
    out.coalescedBatches = st.coalescedBatches;
    return out;
}

struct ShardPhaseResult
{
    double makespan = 0.0;   //!< s: max over shards of modeled busy
    double busyTotal = 0.0;  //!< s: summed modeled accelerator time
    double requestsPerSec = 0.0; //!< modeled closed-loop throughput
    unsigned solved = 0;
    unsigned failed = 0;
    std::uint64_t migrated = 0;
    std::uint64_t preempted = 0;
    std::vector<std::uint64_t> shardDispatches;
};

/**
 * Pick @p count matrices whose operator keys route to shards
 * 0..count-1 under a count-shard scheduler. Because shardOf is the
 * key mod the shard count, residue i mod 4 lands on residue i mod 2
 * and i mod 1 too, so one picked set spreads evenly across every
 * shard count dividing @p count -- the same operators (and so the
 * same total modeled work) serve the 1-, 2- and 4-shard rows.
 */
std::vector<Csr>
pickShardMatrices(unsigned count, const OperatorConfig &opCfg)
{
    AdmissionScheduler::Config pc;
    pc.shards = count;
    const AdmissionScheduler probe(pc);
    std::vector<Csr> mats(count);
    std::vector<bool> found(count, false);
    unsigned have = 0;
    for (std::uint64_t seed = 6000; have < count && seed < 6000 + 512;
         ++seed) {
        Csr m = spdMatrix(64, seed);
        const unsigned s = probe.shardOf(operatorKey(m, opCfg));
        if (!found[s]) {
            found[s] = true;
            mats[s] = std::move(m);
            ++have;
        }
    }
    if (have < count) {
        std::fprintf(stderr, "bench_service: could not spread %u "
                             "operators over %u shards\n",
                     count, count);
        std::exit(2);
    }
    return mats;
}

/**
 * Shard-scaling phase: tenant i solves matrix i (i mod mats.size()),
 * closed loop at @p outstanding, the bench thread pumping all shards
 * round-robin. Throughput is modeled, not wall clock: each shard is
 * an independent accelerator, so the phase's makespan is the busiest
 * shard's summed Accelerator::solveCost over the solves the decision
 * log attributes to it (migrated batches charge the executing
 * shard). Warmup solves (one per operator, building each home
 * shard's prepared replica) are excluded.
 */
ShardPhaseResult
runShardPhase(const std::vector<Csr> &mats,
              const OperatorConfig &opCfg, unsigned shards,
              unsigned total, unsigned outstanding, unsigned tenants)
{
    const std::size_t n =
        static_cast<std::size_t>(mats.front().rows());

    // Bench-side cost models, prepared exactly as the service's
    // Accel backend prepares them.
    std::vector<std::unique_ptr<Accelerator>> models;
    for (const Csr &m : mats) {
        models.push_back(
            std::make_unique<Accelerator>(opCfg.accel));
        models.back()->prepare(m);
    }

    ServiceConfig cfg;
    cfg.workers = 0; // deterministic: the bench thread pumps
    cfg.scheduler.shards = shards;
    cfg.scheduler.batchWindow = 1;
    cfg.scheduler.queueCapacity = outstanding;
    cfg.scheduler.defaultTickets = static_cast<int>(outstanding);
    SolverService svc(cfg);

    // Warm every operator's home-shard replica; warmup request ids
    // never enter matOf, so the attribution loop skips them.
    for (std::size_t i = 0; i < mats.size(); ++i) {
        SolveRequest req;
        req.tenant = "warm";
        req.matrix = &mats[i];
        req.op = opCfg;
        req.b = seededRhs(n, 7000 + i);
        req.tolerance = 1e-6;
        RequestHandle h = svc.submit(req);
        svc.runUntilIdle();
        if (h.wait().status != SolveStatus::Converged)
            return {};
    }

    ShardPhaseResult out;
    std::vector<RequestHandle> handles;
    handles.reserve(total);
    std::unordered_map<std::uint64_t, unsigned> matOf;
    unsigned submitted = 0;
    while (submitted < total) {
        const unsigned burst =
            std::min(outstanding, total - submitted);
        for (unsigned i = 0; i < burst; ++i) {
            const unsigned slot = submitted + i;
            SolveRequest req;
            req.tenant = "shard" + std::to_string(slot % tenants);
            req.matrix = &mats[slot % mats.size()];
            req.op = opCfg;
            req.b = seededRhs(n, 7100 + slot);
            req.tolerance = 1e-6;
            RequestHandle h = svc.submit(req);
            matOf[h.id()] =
                static_cast<unsigned>(slot % mats.size());
            handles.push_back(std::move(h));
        }
        submitted += burst;
        svc.runUntilIdle();
    }

    std::unordered_map<std::uint64_t, const SolverResult *> solveOf;
    for (auto &h : handles) {
        const RequestResult &r = h.wait();
        if (r.status == SolveStatus::Converged)
            ++out.solved;
        else
            ++out.failed;
        solveOf[h.id()] = &r.solve;
    }

    // Charge each dispatched solve's modeled accelerator time to
    // the shard that executed it.
    std::vector<double> busy(shards, 0.0);
    for (const Decision &d : svc.decisionLog()) {
        if (d.kind != DecisionKind::Dispatch)
            continue;
        for (const std::uint64_t id : d.batch) {
            auto mi = matOf.find(id);
            auto si = solveOf.find(id);
            if (mi == matOf.end() || si == solveOf.end())
                continue; // warmup
            busy[d.shard] +=
                models[mi->second]->solveCost(*si->second, false)
                    .time;
        }
    }
    out.makespan = *std::max_element(busy.begin(), busy.end());
    for (const double b : busy)
        out.busyTotal += b;
    out.requestsPerSec =
        out.makespan > 0.0 ? out.solved / out.makespan : 0.0;

    const ServiceStats st = svc.stats();
    out.migrated = st.migrated;
    out.preempted = st.preempted;
    out.shardDispatches = st.shardDispatches;
    return out;
}

/**
 * Fair-share phase: a saturating tenant floods 10x the light
 * tenant's backlog at equal weights; returns the light tenant's
 * share of the first 2 * kLight dispatches -- the window in which
 * both tenants are still backlogged, so SFQ entitles each to half.
 */
double
runFairnessPhase()
{
    const unsigned kLight = 5;
    const unsigned kHeavy = 10 * kLight;
    const Csr heavyM = spdMatrix(64, 6801);
    const Csr lightM = spdMatrix(64, 6803);
    const std::size_t n =
        static_cast<std::size_t>(heavyM.rows());
    OperatorConfig opCfg;
    opCfg.backend = ServiceBackend::Csr;

    ServiceConfig cfg;
    cfg.workers = 0;
    cfg.scheduler.batchWindow = 1;
    cfg.scheduler.queueCapacity = kHeavy + kLight;
    cfg.scheduler.defaultTickets =
        static_cast<int>(kHeavy + kLight);
    SolverService svc(cfg);

    std::vector<RequestHandle> handles;
    for (unsigned i = 0; i < kHeavy; ++i) {
        SolveRequest req;
        req.tenant = "heavy";
        req.matrix = &heavyM;
        req.op = opCfg;
        req.b = seededRhs(n, 6900 + i);
        req.tolerance = 1e-6;
        handles.push_back(svc.submit(req));
    }
    for (unsigned i = 0; i < kLight; ++i) {
        SolveRequest req;
        req.tenant = "light";
        req.matrix = &lightM;
        req.op = opCfg;
        req.b = seededRhs(n, 6950 + i);
        req.tolerance = 1e-6;
        handles.push_back(svc.submit(req));
    }
    svc.runUntilIdle();
    for (auto &h : handles)
        if (h.wait().status != SolveStatus::Converged)
            return 0.0;

    unsigned dispatches = 0;
    unsigned light = 0;
    for (const Decision &d : svc.decisionLog()) {
        if (d.kind != DecisionKind::Dispatch)
            continue;
        if (dispatches < 2 * kLight && d.tenant == "light")
            ++light;
        ++dispatches;
    }
    return static_cast<double>(light) / (2.0 * kLight);
}

bool
writeJson(const std::string &path, const PhaseResult &w1,
          const PhaseResult &w8, const ShardPhaseResult &s1,
          const ShardPhaseResult &s4, double lightShare,
          unsigned total)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_service: cannot open %s\n",
                     path.c_str());
        return false;
    }
    const double speedup = w1.requestsPerSec > 0.0
        ? w8.requestsPerSec / w1.requestsPerSec
        : 0.0;
    const double scaling = s1.requestsPerSec > 0.0
        ? s4.requestsPerSec / s1.requestsPerSec
        : 0.0;
    // Same document shape as bench_micro --json, so tools/perfdiff
    // can gate on the shared baseline file.
    std::fprintf(f, "{\n  \"threads\": %u,\n  \"benchmarks\": [\n",
                 globalThreads());
    const auto entry = [&](const char *name, double usPerReq,
                           unsigned iters, double rps,
                           const char *sep) {
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"matrix\": \"\", "
            "\"real_time\": %.6f, \"time_unit\": \"us\", "
            "\"iterations\": %u, \"items_per_second\": %.3f}%s\n",
            name, usPerReq, iters, rps, sep);
    };
    entry("svcClosedLoopWindow1",
          w1.solved > 0 ? w1.seconds * 1e6 / w1.solved : 0.0,
          w1.solved, w1.requestsPerSec, ",");
    entry("svcClosedLoopWindow8",
          w8.solved > 0 ? w8.seconds * 1e6 / w8.solved : 0.0,
          w8.solved, w8.requestsPerSec, ",");
    // Shard rows report MODELED accelerator time per request
    // (makespan / solved): deterministic, so the perfdiff tolerance
    // only absorbs solver-path changes, not host noise.
    entry("svcShardScaling1",
          s1.solved > 0 ? s1.makespan * 1e6 / s1.solved : 0.0,
          s1.solved, s1.requestsPerSec, ",");
    entry("svcShardScaling4",
          s4.solved > 0 ? s4.makespan * 1e6 / s4.solved : 0.0,
          s4.solved, s4.requestsPerSec, "");
    std::fprintf(f,
                 "  ],\n  \"metrics\": {\n"
                 "    \"service.requests\": %u,\n"
                 "    \"service.p50_latency_us\": %.3f,\n"
                 "    \"service.p99_latency_us\": %.3f,\n"
                 "    \"service.throughput_w1_rps\": %.3f,\n"
                 "    \"service.throughput_w8_rps\": %.3f,\n"
                 "    \"service.coalesce_speedup\": %.3f,\n"
                 "    \"service.shard_scaling_x4\": %.3f,\n"
                 "    \"service.shard4_migrated\": %llu,\n"
                 "    \"service.shard4_max_dispatch_skew\": %llu,\n"
                 "    \"service.fairshare_light_share\": %.3f\n"
                 "  }\n}\n",
                 total, w8.p50Us, w8.p99Us, w1.requestsPerSec,
                 w8.requestsPerSec, speedup, scaling,
                 static_cast<unsigned long long>(s4.migrated),
                 static_cast<unsigned long long>(
                     s4.shardDispatches.empty()
                         ? 0
                         : *std::max_element(
                               s4.shardDispatches.begin(),
                               s4.shardDispatches.end()) -
                               *std::min_element(
                                   s4.shardDispatches.begin(),
                                   s4.shardDispatches.end())),
                 lightShare);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonPath;
    unsigned requests = 0;   // 0 = pick from smoke
    unsigned outstanding = 8;
    unsigned tenants = 1;
    unsigned oneWindow = 0;  // 0 = the full study
    unsigned oneShards = 0;  // 0 = the full study
    const auto uintFlag = [&](int &i, const char *name,
                              unsigned &out) {
        const std::size_t len = std::strlen(name);
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
            out = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            return true;
        }
        if (std::strncmp(argv[i], name, len) == 0 &&
            argv[i][len] == '=') {
            out = static_cast<unsigned>(
                std::strtoul(argv[i] + len + 1, nullptr, 10));
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            jsonPath = argv[i] + 7;
        } else if (uintFlag(i, "--requests", requests) ||
                   uintFlag(i, "--outstanding", outstanding) ||
                   uintFlag(i, "--tenants", tenants) ||
                   uintFlag(i, "--window", oneWindow) ||
                   uintFlag(i, "--shards", oneShards)) {
            // parsed in the condition
        } else {
            std::fprintf(stderr,
                         "usage: bench_service [--smoke] "
                         "[--json out.json] [--requests N] "
                         "[--outstanding N] [--tenants N] "
                         "[--window W] [--shards S]\n");
            return 2;
        }
    }
    if (outstanding == 0 || tenants == 0) {
        std::fprintf(stderr, "bench_service: --outstanding and "
                             "--tenants must be >= 1\n");
        return 2;
    }

    telemetry::Config tcfg;
    tcfg.enabled = true;
    tcfg.spans = false;
    telemetry::configure(tcfg);

    const unsigned total =
        requests > 0 ? requests : (smoke ? 16u : 64u);

    OperatorConfig shardOpCfg;
    shardOpCfg.backend = ServiceBackend::Accel;

    const auto printShardRow = [](unsigned shards,
                                  const ShardPhaseResult &r) {
        std::printf("%8u %12.3f %12.2f %9llu %9llu\n", shards,
                    r.makespan * 1e3, r.requestsPerSec,
                    static_cast<unsigned long long>(r.migrated),
                    static_cast<unsigned long long>(r.preempted));
    };

    if (oneShards > 0) {
        // Sweep mode: one shard-scaling phase at the requested
        // count. Matrices are spread over 4 shards regardless, so
        // --shards {1,2,4} rows share one workload.
        const std::vector<Csr> mats =
            pickShardMatrices(4, shardOpCfg);
        std::printf("Sharded dispatch (modeled accelerator time, "
                    "%u requests, %u outstanding, %u tenants)\n\n",
                    total, outstanding, tenants);
        std::printf("%8s %12s %12s %9s %9s\n", "shards",
                    "makespan ms", "req/s", "migrated",
                    "preempted");
        const ShardPhaseResult r =
            runShardPhase(mats, shardOpCfg, oneShards, total,
                          outstanding, tenants);
        printShardRow(oneShards, r);
        return r.failed > 0 ? 1 : 0;
    }

    const Csr m = spdMatrix(64, 41);

    std::printf("Solver service closed-loop load study "
                "(%u requests, %u outstanding, %u tenant%s, "
                "cluster bit-exact backend)\n\n",
                total, outstanding, tenants,
                tenants == 1 ? "" : "s");
    std::printf("%8s %10s %10s %12s %12s %9s\n", "window",
                "wall s", "req/s", "p50 us", "p99 us", "batches");
    const auto printRow = [](unsigned window,
                             const PhaseResult &r) {
        std::printf("%8u %10.3f %10.2f %12.0f %12.0f %9llu\n",
                    window, r.seconds, r.requestsPerSec, r.p50Us,
                    r.p99Us,
                    static_cast<unsigned long long>(r.batches));
    };

    if (oneWindow > 0) {
        // Sweep mode: one phase at the requested window; shell
        // loops over --window/--outstanding/--tenants build the
        // load-sweep tables in EXPERIMENTS.md.
        const PhaseResult r =
            runPhase(m, oneWindow, total, outstanding, tenants);
        printRow(oneWindow, r);
        return r.failed > 0 ? 1 : 0;
    }

    const PhaseResult w1 =
        runPhase(m, 1, total, outstanding, tenants);
    printRow(1, w1);
    const PhaseResult w8 =
        runPhase(m, 8, total, outstanding, tenants);
    printRow(8, w8);

    const double speedup = w1.requestsPerSec > 0.0
        ? w8.requestsPerSec / w1.requestsPerSec
        : 0.0;
    std::printf("\ncoalescing speedup (window 8 vs 1): %.2fx\n",
                speedup);

    // Shard scaling at the ISSUE's canonical operating point: four
    // tenants, sixteen outstanding, operators spread over shards.
    const std::vector<Csr> mats = pickShardMatrices(4, shardOpCfg);
    std::printf("\nSharded dispatch (modeled accelerator time, "
                "%u requests, 16 outstanding, 4 tenants)\n\n",
                total);
    std::printf("%8s %12s %12s %9s %9s\n", "shards", "makespan ms",
                "req/s", "migrated", "preempted");
    const ShardPhaseResult s1 =
        runShardPhase(mats, shardOpCfg, 1, total, 16, 4);
    printShardRow(1, s1);
    const ShardPhaseResult s4 =
        runShardPhase(mats, shardOpCfg, 4, total, 16, 4);
    printShardRow(4, s4);
    const double scaling = s1.requestsPerSec > 0.0
        ? s4.requestsPerSec / s1.requestsPerSec
        : 0.0;
    std::printf("\nshard scaling (4 shards vs 1): %.2fx\n",
                scaling);

    const double lightShare = runFairnessPhase();
    std::printf("fair-share light-tenant dispatch share under "
                "10:1 load: %.2f (ideal 0.50)\n",
                lightShare);

    if (!jsonPath.empty() &&
        !writeJson(jsonPath, w1, w8, s1, s4, lightShare, total))
        return 2;

    if (smoke) {
        if (w1.failed + w8.failed + s1.failed + s4.failed > 0) {
            std::fprintf(stderr,
                         "bench_service: %u requests failed\n",
                         w1.failed + w8.failed + s1.failed +
                             s4.failed);
            return 1;
        }
        if (w8.coalescedBatches == 0) {
            std::fprintf(stderr, "bench_service: window 8 never "
                                 "coalesced\n");
            return 1;
        }
        // The panel amortization claim the ISSUE gates on: k = 8
        // coalescing must at least double closed-loop throughput.
        if (speedup < 2.0) {
            std::fprintf(stderr,
                         "bench_service: coalescing speedup %.2fx "
                         "under the 2x floor\n",
                         speedup);
            return 1;
        }
        // Sharded dispatch must spread the four operators: modeled
        // 4-shard throughput at least 2.5x the single shard's.
        if (scaling < 2.5) {
            std::fprintf(stderr,
                         "bench_service: shard scaling %.2fx under "
                         "the 2.5x floor\n",
                         scaling);
            return 1;
        }
        // Fair share: 10:1 pressure leaves the light tenant within
        // 20% of its half share of the contended window.
        if (lightShare < 0.4 || lightShare > 0.6) {
            std::fprintf(stderr,
                         "bench_service: light tenant share %.2f "
                         "outside [0.4, 0.6]\n",
                         lightShare);
            return 1;
        }
    }
    return 0;
}
