/**
 * @file
 * Closed-loop load study of the solver service (service/service.hh):
 * a fixed micro workload of same-operator CG requests driven through
 * the admission scheduler at a fixed concurrency, once with the
 * batching window disabled (window = 1, sequential dispatch) and
 * once with window = 8 (same-key requests coalesce into one lockstep
 * panel per dispatch). The panel amortizes the cluster operator's
 * per-iteration slice walk across columns, so the window-8 phase
 * must deliver a wall-clock throughput multiple on identical bits --
 * the coalescing contract pins bitwise equality, this bench pins
 * that the lever is actually worth pulling.
 *
 * Request latency (submit -> terminal, microseconds) comes from the
 * service's own service.latency_us histogram; the cache-warm p50/p99
 * land in the --json metrics block as service.p50_latency_us /
 * service.p99_latency_us so the perf-smoke gate tracks them.
 *
 * Usage: bench_service [--smoke] [--json out.json]
 *                      [--requests N] [--outstanding N]
 *                      [--tenants N] [--window W]
 *   --smoke       shrink the workload for CI and exit non-zero when
 *                 the coalescing speedup falls under 2x or any
 *                 request fails
 *   --json        write the bench_micro-compatible baseline document
 *                 (tools/perfdiff diffs it against bench/baselines/)
 *   --requests    total requests per phase (default 64, smoke 16)
 *   --outstanding closed-loop concurrency = queue capacity
 *                 (default 8)
 *   --tenants     spread requests round-robin over N tenants
 *                 (default 1); each tenant gets a full ticket
 *                 budget, so this varies accounting, not admission
 *   --window      run ONE phase at this batching window and print
 *                 its row (for sweep scripts) instead of the
 *                 default window-1-vs-8 comparison
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/exec_context.hh"
#include "service/service.hh"
#include "sparse/gen.hh"
#include "util/random.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace {

using namespace msc;

Csr
spdMatrix(std::int32_t n, std::uint64_t seed)
{
    TiledParams p;
    p.rows = n;
    p.tile = 32;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = seed;
    return genTiled(p);
}

std::vector<double>
seededRhs(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> b(n);
    for (double &v : b)
        v = 2.0 * rng.uniform() - 1.0;
    return b;
}

struct PhaseResult
{
    double seconds = 0.0;
    double requestsPerSec = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    unsigned solved = 0;
    unsigned failed = 0;
    std::uint64_t batches = 0;
    std::uint64_t coalescedBatches = 0;
};

/**
 * Closed loop at a fixed concurrency: submit @p outstanding
 * same-operator requests, pump the service dry, repeat until
 * @p total requests completed. The prepare cache is warmed before
 * the clock starts, so the phase measures steady-state dispatch +
 * solve, not the one-time placement build.
 */
PhaseResult
runPhase(const Csr &m, unsigned window, unsigned total,
         unsigned outstanding, unsigned tenants = 1)
{
    const std::size_t n = static_cast<std::size_t>(m.rows());
    OperatorConfig opCfg;
    opCfg.backend = ServiceBackend::ClusterBitExact;

    ServiceConfig cfg;
    cfg.workers = 0; // deterministic: the bench thread pumps
    cfg.scheduler.batchWindow = window;
    cfg.scheduler.queueCapacity = outstanding;
    cfg.scheduler.defaultTickets =
        static_cast<int>(outstanding);
    SolverService svc(cfg);

    // Cache warmup (also primes the telemetry cells).
    {
        SolveRequest req;
        req.tenant = "bench";
        req.matrix = &m;
        req.op = opCfg;
        req.b = seededRhs(n, 4000);
        req.tolerance = 1e-6;
        RequestHandle h = svc.submit(req);
        svc.runUntilIdle();
        if (h.wait().status != SolveStatus::Converged)
            return {};
    }
    telemetry::reset(); // warmup out of the latency histogram

    PhaseResult out;
    std::vector<RequestHandle> handles;
    handles.reserve(total);
    const auto t0 = std::chrono::steady_clock::now();
    unsigned submitted = 0;
    while (submitted < total) {
        const unsigned burst =
            std::min(outstanding, total - submitted);
        for (unsigned i = 0; i < burst; ++i) {
            SolveRequest req;
            req.tenant = tenants > 1
                ? "bench" + std::to_string((submitted + i) % tenants)
                : "bench";
            req.matrix = &m;
            req.op = opCfg;
            req.b = seededRhs(n, 4100 + submitted + i);
            req.tolerance = 1e-6;
            handles.push_back(svc.submit(req));
        }
        submitted += burst;
        svc.runUntilIdle();
    }
    const auto t1 = std::chrono::steady_clock::now();

    for (auto &h : handles) {
        const RequestResult &r = h.wait();
        if (r.status == SolveStatus::Converged)
            ++out.solved;
        else
            ++out.failed;
    }
    out.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.requestsPerSec =
        out.seconds > 0.0 ? out.solved / out.seconds : 0.0;
    for (const auto &h : telemetry::snapshotHistograms()) {
        if (h.name == "service.latency_us") {
            out.p50Us = telemetry::histogramQuantile(h, 0.5);
            out.p99Us = telemetry::histogramQuantile(h, 0.99);
        }
    }
    const ServiceStats st = svc.stats();
    out.batches = st.batches;
    out.coalescedBatches = st.coalescedBatches;
    return out;
}

bool
writeJson(const std::string &path, const PhaseResult &w1,
          const PhaseResult &w8, unsigned total)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_service: cannot open %s\n",
                     path.c_str());
        return false;
    }
    const double speedup = w1.requestsPerSec > 0.0
        ? w8.requestsPerSec / w1.requestsPerSec
        : 0.0;
    // Same document shape as bench_micro --json, so tools/perfdiff
    // can gate on the shared baseline file.
    std::fprintf(f, "{\n  \"threads\": %u,\n  \"benchmarks\": [\n",
                 globalThreads());
    const auto entry = [&](const char *name, const PhaseResult &r,
                           const char *sep) {
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"matrix\": \"\", "
            "\"real_time\": %.6f, \"time_unit\": \"us\", "
            "\"iterations\": %u, \"items_per_second\": %.3f}%s\n",
            name,
            r.solved > 0 ? r.seconds * 1e6 / r.solved : 0.0,
            r.solved, r.requestsPerSec, sep);
    };
    entry("svcClosedLoopWindow1", w1, ",");
    entry("svcClosedLoopWindow8", w8, "");
    std::fprintf(f,
                 "  ],\n  \"metrics\": {\n"
                 "    \"service.requests\": %u,\n"
                 "    \"service.p50_latency_us\": %.3f,\n"
                 "    \"service.p99_latency_us\": %.3f,\n"
                 "    \"service.throughput_w1_rps\": %.3f,\n"
                 "    \"service.throughput_w8_rps\": %.3f,\n"
                 "    \"service.coalesce_speedup\": %.3f\n"
                 "  }\n}\n",
                 total, w8.p50Us, w8.p99Us, w1.requestsPerSec,
                 w8.requestsPerSec, speedup);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string jsonPath;
    unsigned requests = 0;   // 0 = pick from smoke
    unsigned outstanding = 8;
    unsigned tenants = 1;
    unsigned oneWindow = 0;  // 0 = the window-1-vs-8 comparison
    const auto uintFlag = [&](int &i, const char *name,
                              unsigned &out) {
        const std::size_t len = std::strlen(name);
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
            out = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
            return true;
        }
        if (std::strncmp(argv[i], name, len) == 0 &&
            argv[i][len] == '=') {
            out = static_cast<unsigned>(
                std::strtoul(argv[i] + len + 1, nullptr, 10));
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            jsonPath = argv[i] + 7;
        } else if (uintFlag(i, "--requests", requests) ||
                   uintFlag(i, "--outstanding", outstanding) ||
                   uintFlag(i, "--tenants", tenants) ||
                   uintFlag(i, "--window", oneWindow)) {
            // parsed in the condition
        } else {
            std::fprintf(stderr,
                         "usage: bench_service [--smoke] "
                         "[--json out.json] [--requests N] "
                         "[--outstanding N] [--tenants N] "
                         "[--window W]\n");
            return 2;
        }
    }
    if (outstanding == 0 || tenants == 0) {
        std::fprintf(stderr, "bench_service: --outstanding and "
                             "--tenants must be >= 1\n");
        return 2;
    }

    telemetry::Config tcfg;
    tcfg.enabled = true;
    tcfg.spans = false;
    telemetry::configure(tcfg);

    const unsigned total =
        requests > 0 ? requests : (smoke ? 16u : 64u);
    const Csr m = spdMatrix(64, 41);

    std::printf("Solver service closed-loop load study "
                "(%u requests, %u outstanding, %u tenant%s, "
                "cluster bit-exact backend)\n\n",
                total, outstanding, tenants,
                tenants == 1 ? "" : "s");
    std::printf("%8s %10s %10s %12s %12s %9s\n", "window",
                "wall s", "req/s", "p50 us", "p99 us", "batches");
    const auto printRow = [](unsigned window,
                             const PhaseResult &r) {
        std::printf("%8u %10.3f %10.2f %12.0f %12.0f %9llu\n",
                    window, r.seconds, r.requestsPerSec, r.p50Us,
                    r.p99Us,
                    static_cast<unsigned long long>(r.batches));
    };

    if (oneWindow > 0) {
        // Sweep mode: one phase at the requested window; shell
        // loops over --window/--outstanding/--tenants build the
        // load-sweep tables in EXPERIMENTS.md.
        const PhaseResult r =
            runPhase(m, oneWindow, total, outstanding, tenants);
        printRow(oneWindow, r);
        return r.failed > 0 ? 1 : 0;
    }

    const PhaseResult w1 =
        runPhase(m, 1, total, outstanding, tenants);
    printRow(1, w1);
    const PhaseResult w8 =
        runPhase(m, 8, total, outstanding, tenants);
    printRow(8, w8);

    const double speedup = w1.requestsPerSec > 0.0
        ? w8.requestsPerSec / w1.requestsPerSec
        : 0.0;
    std::printf("\ncoalescing speedup (window 8 vs 1): %.2fx\n",
                speedup);

    if (!jsonPath.empty() && !writeJson(jsonPath, w1, w8, total))
        return 2;

    if (smoke) {
        if (w1.failed + w8.failed > 0) {
            std::fprintf(stderr,
                         "bench_service: %u requests failed\n",
                         w1.failed + w8.failed);
            return 1;
        }
        if (w8.coalescedBatches == 0) {
            std::fprintf(stderr, "bench_service: window 8 never "
                                 "coalesced\n");
            return 1;
        }
        // The panel amortization claim the ISSUE gates on: k = 8
        // coalescing must at least double closed-loop throughput.
        if (speedup < 2.0) {
            std::fprintf(stderr,
                         "bench_service: coalescing speedup %.2fx "
                         "under the 2x floor\n",
                         speedup);
            return 1;
        }
    }
    return 0;
}
