/**
 * @file
 * Reproduces Table III: area, energy, and latency of the four
 * crossbar sizes (ADC included), next to the paper's numbers.
 */

#include <cstdio>

#include "xbar/model.hh"

int
main()
{
    using namespace msc;

    struct PaperRow
    {
        unsigned size;
        double areaMm2;
        double energyPj;
        double latencyNs;
    };
    const PaperRow paper[] = {
        {64, 0.00078, 28.0, 53.3},
        {128, 0.00103, 65.2, 107.0},
        {256, 0.00162, 150.0, 213.0},
        {512, 0.00352, 342.0, 427.0},
    };

    std::printf("Table III: area, energy, latency per crossbar size "
                "(includes the ADC)\n");
    std::printf("%5s | %12s %12s | %11s %11s | %12s %12s | %4s\n",
                "Size", "Area[mm2]", "paper", "Energy[pJ]", "paper",
                "Latency[ns]", "paper", "ADCb");
    std::printf("%.*s\n", 104,
                "-----------------------------------------------------"
                "-----------------------------------------------------");
    for (const PaperRow &row : paper) {
        const XbarModel model(row.size);
        std::printf(
            "%5u | %12.5f %12.5f | %11.1f %11.1f | %12.1f %12.1f "
            "| %4u\n",
            row.size, model.area(), row.areaMm2,
            model.opEnergy() * 1e12, row.energyPj,
            model.opLatency() * 1e9, row.latencyNs,
            model.adcResolutionBits());
    }

    std::printf("\nComponent split and headstart sensitivity "
                "(N = 512):\n");
    const XbarModel m512(512);
    std::printf("  ADC share of op energy : %.1f%%\n",
                100.0 * m512.adcOpEnergy() / m512.opEnergy());
    std::printf("  ADC share of area      : %.1f%%\n",
                100.0 * m512.adcArea() / m512.area());
    std::printf("  conversion energy, full %u bits: %.3f pJ; "
                "headstart to 4 bits: %.3f pJ\n",
                m512.adcResolutionBits(),
                m512.conversionEnergy(m512.adcResolutionBits()) * 1e12,
                m512.conversionEnergy(4) * 1e12);
    std::printf("  program time (row-parallel writes): %.2f us per "
                "crossbar\n", m512.programTime() * 1e6);
    return 0;
}
