/**
 * @file
 * Reproduces Figure 9: accelerator energy consumption normalized to
 * the GPU baseline (lower is better; the paper plots accel/GPU on a
 * log axis).
 *
 * Paper headline: total energy improved 14.2x on the 18 matrices
 * executed on the accelerator and 10.9x over the full 20-matrix set.
 * The exponent-range effect is visible in the pair nasasrb /
 * Pres_Poisson: similar blocking efficiency, but Pres_Poisson's much
 * narrower exponent range means fewer vector bit slices per cluster
 * and roughly twice the energy improvement (Section VIII-B).
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/logging.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    ExperimentConfig cfg;

    std::printf("Figure 9: energy normalized to the GPU baseline\n");
    std::printf("%-16s %9s %9s | %12s %12s | %10s %s\n", "Matrix",
                "slices", "expRange", "accel[J]", "gpu[J]",
                "accel/gpu", "note");
    std::printf("%.*s\n", 100,
                "-----------------------------------------------------"
                "-----------------------------------------------");

    std::vector<double> ratiosAll;
    std::vector<double> ratiosAccel; // the 18 non-fallback matrices
    // One suite pass through the parallel engine; results arrive in
    // suite order regardless of the lane count.
    for (const ExperimentResult &r : runSuiteExperiments(cfg)) {
        const double normalized = r.accelEnergy / r.gpuEnergy;
        ratiosAll.push_back(r.energyRatio());
        if (!r.gpuFallback)
            ratiosAccel.push_back(r.energyRatio());
        std::printf(
            "%-16s %9s %9d | %12.3f %12.3f | %10.4f %s\n",
            r.name.c_str(), "", r.stats.expRange, r.accelEnergy,
            r.gpuEnergy, normalized,
            r.gpuFallback ? "gpu-fallback" : "");
    }
    std::printf("%.*s\n", 100,
                "-----------------------------------------------------"
                "-----------------------------------------------");
    std::printf("G-MEAN energy improvement, accelerator-executed "
                "matrices: %.2fx (paper: 14.2x)\n",
                geometricMean(ratiosAccel));
    std::printf("G-MEAN energy improvement, all 20 matrices:        "
                "%.2fx (paper: 10.9x)\n",
                geometricMean(ratiosAll));
    return 0;
}
